module Tt = Stp_tt.Tt
module Npn = Stp_tt.Npn
module Chain = Stp_chain.Chain

type solver = Engine.spec -> deadline:Stp_util.Deadline.t -> Engine.result

type stats = { hits : int; misses : int; bypassed : int; failures : int }

type entry = {
  gates : int;
  chains : Chain.t list; (* over the canonical function's variable space *)
}

type t = {
  lock : Mutex.t;
  table : (Tt.t, entry) Hashtbl.t;
  max_support : int;
  mutable hits : int;
  mutable misses : int;
  mutable bypassed : int;
  mutable failures : int;
}

let create ?(max_support = 6) () =
  { lock = Mutex.create ();
    table = Hashtbl.create 997;
    max_support;
    hits = 0;
    misses = 0;
    bypassed = 0;
    failures = 0 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let stats t =
  locked t (fun () ->
      { hits = t.hits;
        misses = t.misses;
        bypassed = t.bypassed;
        failures = t.failures })

let classes t = locked t (fun () -> Hashtbl.length t.table)

let hit_rate t =
  let s = stats t in
  let looked_up = s.hits + s.misses in
  if looked_up = 0 then 0.0 else float_of_int s.hits /. float_of_int looked_up

let lookup t canon = locked t (fun () -> Hashtbl.find_opt t.table canon)

let store t canon entry =
  locked t (fun () ->
      if not (Hashtbl.mem t.table canon) then Hashtbl.replace t.table canon entry)

let cached t f =
  (* Mirrors [wrap_solver]'s lookup path without touching the stats:
     would this target be answered by a replay right now? *)
  if Tt.is_const f then false
  else
    match Common.prepare f with
    | `Trivial _ -> false
    | `Reduced (target, _) ->
      Tt.num_vars target <= t.max_support
      &&
      let canon, _ = Npn.canonical target in
      locked t (fun () -> Hashtbl.mem t.table canon)

let entries t =
  locked t (fun () ->
      Hashtbl.fold (fun canon entry acc -> (canon, entry) :: acc) t.table [])

let add_entry t canon entry =
  (* Entries arriving from outside the solving path (a persisted store)
     are sanitised rather than trusted: only chains that simulate to
     the key survive, sizes must agree, and the key must really be a
     cacheable canonical representative. A corrupt or stale record can
     therefore never poison replays — it is simply dropped. *)
  if Tt.num_vars canon > t.max_support || not (Npn.is_canonical canon) then
    false
  else
    let chains =
      List.filter
        (fun c ->
          c.Chain.n = Tt.num_vars canon
          && Chain.size c = entry.gates
          && Tt.equal (Chain.simulate c) canon)
        entry.chains
    in
    match chains with
    | [] -> false
    | chains ->
      locked t (fun () ->
          if Hashtbl.mem t.table canon then false
          else begin
            Hashtbl.replace t.table canon { entry with chains };
            true
          end)

(* Map the cached optimum chains of the class representative back onto
   the concrete target: [tr] satisfies [Npn.apply target tr = canon], so
   replaying [Npn.inverse tr] onto a chain computing [canon] yields a
   chain of identical size computing [target] (input negations and the
   output negation fold into gate codes, the permutation relabels
   fanins). Cached chains were verified against the canonical target
   once, when the entry was stored; each replay only re-simulates the
   transformed chain (a cheap bit-parallel check) instead of re-running
   the full dedup + circuit-SAT verification per class member. *)
let replay ~n ~support ~target ~tr entry =
  let inv = Npn.inverse tr in
  let replayed =
    List.filter_map
      (fun c ->
        let c = Chain.apply_npn c inv in
        if Tt.equal (Chain.simulate c) target then
          Some (Common.expand_chain ~n ~support c)
        else None)
      entry.chains
  in
  match replayed with [] -> None | chains -> Some chains

let wrap_solver t (solve : solver) : solver =
 fun spec ~deadline ->
  let f = spec.Engine.target in
  if Tt.is_const f then solve spec ~deadline
  else
    match Common.prepare f with
    | `Trivial chain -> Engine.Solved [ chain ]
    | `Reduced (target, support) ->
      if Tt.num_vars target > t.max_support then begin
        (* Exhaustive canonicalisation is impractical this wide; solve
           directly. *)
        locked t (fun () -> t.bypassed <- t.bypassed + 1);
        solve spec ~deadline
      end
      else begin
        let n = Tt.num_vars f in
        let canon, tr = Npn.canonical target in
        match lookup t canon with
        | Some entry -> (
          locked t (fun () -> t.hits <- t.hits + 1);
          match replay ~n ~support ~target ~tr entry with
          | Some chains -> Engine.Solved chains
          | None ->
            (* A cached chain failing replay would be a bug in the
               transform algebra; never let it corrupt results — fall
               back to a direct solve and record the event. *)
            locked t (fun () -> t.failures <- t.failures + 1);
            solve spec ~deadline)
        | None -> (
          locked t (fun () -> t.misses <- t.misses + 1);
          (* Solve the class representative so the cached entry serves
             every member of the class, then replay onto this member. *)
          match solve { spec with Engine.target = canon } ~deadline with
          | (Engine.Timeout | Engine.Infeasible) as r -> r
          | Engine.Solved chains -> (
            (* The paper's step (iv), run once per class: dedup and
               verify against the canonical target before storing. *)
            match Common.optimal_and_verified canon chains with
            | [] ->
              locked t (fun () -> t.failures <- t.failures + 1);
              solve spec ~deadline
            | verified -> (
              let entry =
                { gates = Chain.size (List.hd verified); chains = verified }
              in
              store t canon entry;
              match replay ~n ~support ~target ~tr entry with
              | Some chains -> Engine.Solved chains
              | None ->
                locked t (fun () -> t.failures <- t.failures + 1);
                solve spec ~deadline)))
      end

let wrap t (module E : Engine.S) : (module Engine.S) =
  (module struct
    let name = E.name

    let synthesize spec ~deadline = wrap_solver t E.synthesize spec ~deadline
  end)

let synthesize ?(options = Spec.default_options) ?memo t f =
  let start = Stp_util.Unix_time.now () in
  let deadline = Spec.deadline_of options in
  let (module E : Engine.S) = wrap t Engine.stp in
  let r = E.synthesize (Engine.spec ~options ?memo f) ~deadline in
  Engine.to_spec_result ~elapsed:(Stp_util.Unix_time.now () -. start) r
