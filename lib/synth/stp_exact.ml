module Tt = Stp_tt.Tt
module Chain = Stp_chain.Chain
module Gate = Stp_chain.Gate
module Dag = Stp_topology.Dag

exception Found_enough

(* Cross product of sub-chains joined by a top gate. [g_chains] and
   [h_chains] range over the same n-variable space with disjoint
   supports; output complements of gate-free sub-chains fold into the
   top gate code. *)
let basis_mask = function
  | None -> List.fold_left (fun m g -> m lor (1 lsl g)) 0 Gate.nontrivial
  | Some gates -> List.fold_left (fun m g -> m lor (1 lsl g)) 0 gates

let compose_chains ~allowed ~cap phi g_chains h_chains acc =
  List.iter
    (fun (cg : Chain.t) ->
      List.iter
        (fun (ch : Chain.t) ->
          if List.length !acc < cap then begin
            let n = cg.Chain.n in
            let sg = Array.to_list cg.Chain.steps in
            let shift = Array.length cg.Chain.steps in
            let move s = if s < n then s else s + shift in
            let sh =
              List.map
                (fun (st : Chain.step) ->
                  { Chain.fanin1 = move st.fanin1;
                    fanin2 = move st.fanin2;
                    gate = st.gate })
                (Array.to_list ch.Chain.steps)
            in
            let phi = if cg.Chain.output_negated then Gate.negate_first phi else phi in
            let phi = if ch.Chain.output_negated then Gate.negate_second phi else phi in
            if (allowed lsr phi) land 1 = 1 then begin
              let top =
                { Chain.fanin1 = cg.Chain.output;
                  fanin2 = move ch.Chain.output;
                  gate = phi }
              in
              let steps = sg @ sh @ [ top ] in
              let chain =
                Chain.make ~n ~steps
                  ~output:(n + List.length steps - 1)
                  ()
              in
              acc := chain :: !acc
            end
          end)
        h_chains)
    g_chains

(* Shape search at one gate count (the paper's Section III loop). *)
let search_shapes ~options ~deadline ~memo ~stats target r =
  let s = Tt.support_size target in
  let depth_ok (shape : Dag.t) =
    match options.Spec.max_depth with
    | None -> true
    | Some d -> Array.length shape.Dag.fence <= d
  in
  let found = ref [] in
  (try
     Dag.iter r (fun shape ->
         Stp_util.Deadline.check deadline;
         if depth_ok shape && shape.Dag.num_leaves >= s then begin
           let chains =
             Factor.solve_shape ~deadline ~memo ~stats
               ~cap:options.Spec.solution_cap ~shape ~target ()
           in
           if chains <> [] then begin
             let verified = Common.optimal_and_verified target chains in
             found := verified @ !found;
             (* Paper semantics: all optimal solutions under the current
                topological constraints, in one pass. *)
             if (not options.Spec.all_shapes) && !found <> [] then
               raise Found_enough
           end
         end)
   with Found_enough -> ());
  if options.Spec.all_shapes then Common.optimal_and_verified target !found
  else !found

(* Synthesis of one target over the full reduced variable space. Returns
   (gates, chains); raises Deadline.Timeout. [None] when max_gates is
   exceeded. Targets are memoised: DSD peeling revisits subfunctions
   (complement pairs in particular). *)
let rec synth ~options ~deadline ~memo ~stats ~cache target =
  match Hashtbl.find_opt cache target with
  | Some r -> r
  | None ->
    let result = synth_uncached ~options ~deadline ~memo ~stats ~cache target in
    Hashtbl.replace cache target result;
    result

and synth_uncached ~options ~deadline ~memo ~stats ~cache target =
  Stp_util.Deadline.check deadline;
  let n = Tt.num_vars target in
  match Tt.support target with
  | [] -> None (* constants have no chain *)
  | [ v ] ->
    let negated = Tt.equal target (Tt.bnot (Tt.var n v)) in
    Some (0, [ Chain.make ~n ~steps:[] ~output:v ~output_negated:negated () ])
  | support ->
    let s = List.length support in
    let splits =
      if options.Spec.use_dsd && options.Spec.max_depth = None then
        Stp_tt.Dsd.top_splits target
      else []
    in
    let via_dsd =
      match splits with
      | [] -> None
      | (amask, bmask) :: _ ->
       (* Disjoint decomposition: synthesise each factorisation's
          sub-functions recursively and join. All factorisations of the
          split contribute solutions; the optimum is split-invariant. *)
       let triples =
         Factor.decompose ~memo ~cap:64 ~target ~amask ~bmask ()
       in
       let best = ref None in
       let chains = ref [] in
       List.iter
         (fun { Factor.phi; g; h } ->
           match synth ~options ~deadline ~memo ~stats ~cache g with
           | None -> ()
           | Some (gates_g, chains_g) -> (
             match synth ~options ~deadline ~memo ~stats ~cache h with
             | None -> ()
             | Some (gates_h, chains_h) ->
               let allowed = basis_mask options.Spec.basis in
               let total = gates_g + gates_h + 1 in
               (match !best with
                | Some b when b < total -> ()
                | Some b when b = total ->
                  compose_chains ~allowed ~cap:options.Spec.solution_cap phi
                    chains_g chains_h chains
                | _ ->
                  best := Some total;
                  chains := [];
                  compose_chains ~allowed ~cap:options.Spec.solution_cap phi
                    chains_g chains_h chains)))
         triples;
        (match !best with
         | Some gates when !chains <> [] ->
           let verified = Common.optimal_and_verified target !chains in
           assert (verified <> []);
           Some (gates, verified)
         | _ -> None)
    in
    (match via_dsd with
     | Some r -> Some r
     | None ->
       (* Prime target — or a decomposable one whose split produced no
          chain under a restricted basis: the fence/DAG shape search. *)
       let rec try_size r =
         if r > options.Spec.max_gates then None
         else begin
           Stp_util.Deadline.check deadline;
           match search_shapes ~options ~deadline ~memo ~stats target r with
           | [] -> try_size (r + 1)
           | chains -> Some (r, chains)
         end
       in
       try_size (max 1 (s - 1)))

let synthesize_reduced ~options ~deadline ~memo target =
  let memo =
    match memo with
    | Some m -> m
    | None -> Factor.create_memo ?basis:options.Spec.basis ()
  in
  let stats = Factor.fresh_stats () in
  let cache = Hashtbl.create 97 in
  synth ~options ~deadline ~memo ~stats ~cache target

let synthesize_outcome ?(options = Spec.default_options) ?memo ~deadline f =
  if Tt.is_const f then `Infeasible
  else
    match Common.prepare f with
    | `Trivial chain -> `Solved ([ chain ], 0)
    | `Reduced (target, support) -> (
      let n = Tt.num_vars f in
      match synthesize_reduced ~options ~deadline ~memo target with
      | Some (gates, chains) ->
        `Solved (List.map (Common.expand_chain ~n ~support) chains, gates)
      | None ->
        (* [try_size] only returns [None] when the gate budget is
           exhausted with every size refuted — deadline expiry raises. *)
        `Infeasible
      | exception Stp_util.Deadline.Timeout -> `Timeout)

let synthesize ?(options = Spec.default_options) ?memo f =
  let start = Stp_util.Unix_time.now () in
  let deadline = Spec.deadline_of options in
  let elapsed () = Stp_util.Unix_time.now () -. start in
  match Common.prepare f with
  | `Trivial chain ->
    Spec.solved ~chains:[ chain ] ~gates:0 ~elapsed:(elapsed ())
  | `Reduced (target, support) -> (
    let n = Tt.num_vars f in
    match synthesize_reduced ~options ~deadline ~memo target with
    | Some (gates, chains) ->
      let chains = List.map (Common.expand_chain ~n ~support) chains in
      Spec.solved ~chains ~gates ~elapsed:(elapsed ())
    | None -> Spec.timed_out ~elapsed:(elapsed ())
    | exception Stp_util.Deadline.Timeout -> Spec.timed_out ~elapsed:(elapsed ()))

let synthesize_npn ?(options = Spec.default_options) ?memo f =
  let start = Stp_util.Unix_time.now () in
  let deadline = Spec.deadline_of options in
  let elapsed () = Stp_util.Unix_time.now () -. start in
  match Common.prepare f with
  | `Trivial chain ->
    Spec.solved ~chains:[ chain ] ~gates:0 ~elapsed:(elapsed ())
  | `Reduced (target, support) -> (
    let n = Tt.num_vars f in
    let canon, tr = Stp_tt.Npn.canonical target in
    match Common.prepare canon with
    | `Trivial _ ->
      (* A non-trivial function cannot have a trivial NPN representative. *)
      assert false
    | `Reduced (canon_target, canon_support) -> (
      match synthesize_reduced ~options ~deadline ~memo canon_target with
      | Some (gates, chains) ->
        let inv = Stp_tt.Npn.inverse tr in
        let chains =
          chains
          |> List.map
               (Common.expand_chain ~n:(Tt.num_vars canon) ~support:canon_support)
          |> List.map (fun c -> Chain.apply_npn c inv)
          |> List.map (Common.expand_chain ~n ~support)
        in
        Spec.solved ~chains ~gates ~elapsed:(elapsed ())
      | None -> Spec.timed_out ~elapsed:(elapsed ())
      | exception Stp_util.Deadline.Timeout -> Spec.timed_out ~elapsed:(elapsed ())))
