type status = Solved | Timeout

type result = {
  status : status;
  chains : Stp_chain.Chain.t list;
  gates : int option;
  elapsed : float;
}

type options = {
  timeout : float option;
  max_gates : int;
  solution_cap : int;
  all_shapes : bool;
  use_dsd : bool;
  basis : Stp_chain.Gate.code list option;
  max_depth : int option;
}

let default_options =
  { timeout = None; max_gates = 14; solution_cap = 2000; all_shapes = false;
    use_dsd = true; basis = None; max_depth = None }

let with_timeout s = { default_options with timeout = Some s }

let deadline_of options =
  match options.timeout with
  | None -> Stp_util.Deadline.never
  | Some s -> Stp_util.Deadline.after s

let solved ~chains ~gates ~elapsed = { status = Solved; chains; gates = Some gates; elapsed }

let timed_out ~elapsed = { status = Timeout; chains = []; gates = None; elapsed }
