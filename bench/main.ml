(* Regenerates every table and figure of the paper's evaluation:

   - TABLE I: the four engines over the five function collections
     (reduced default scale and timeout so one run stays laptop-sized;
     bin/table1.exe exposes the full parameter space);
   - FIG 1: the STP AllSAT search tree of the liar puzzle (Example 4);
   - FIG 2: fence family sizes and the pruned F_3;
   - FIG 3: the valid DAG shapes of F_3;
   - Bechamel microbenchmarks, one group per reproduced artefact.

   Run with:  dune exec bench/main.exe
   Flags:     --jobs N         fan Table I instances over N domains
              --no-npn-cache   disable NPN-class chain reuse
   Each run also writes its Table I aggregates (wall-clock, speedup,
   cache hit-rate) to BENCH_table1.json for cross-PR tracking. *)

module Tt = Stp_tt.Tt
module Runner = Stp_harness.Runner
module Table = Stp_harness.Table
module Collections = Stp_workloads.Collections

let bench_timeout = 2.5

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Collection scale for one bench run: NPN4 is subsampled (every third
   class) because the hardest classes dominate wall-clock; the paper's
   relative picture is preserved (see EXPERIMENTS.md). *)
let bench_collections () =
  let sub k (c : Collections.t) =
    { c with
      Collections.functions =
        List.filteri (fun i _ -> i mod k = 0) c.Collections.functions }
  in
  [ sub 5 (Collections.npn4 Collections.Default);
    (* The class-reuse workload: many functions per NPN class, so the
       cache turns most instances into transform replays. *)
    sub 4 (Collections.npn4_all Collections.Default);
    { (Collections.fdsd6 Collections.Default) with
      Collections.functions =
        (Collections.fdsd6 Collections.Default).Collections.functions
        |> List.filteri (fun i _ -> i < 30) };
    sub 1 (Collections.fdsd8 (Collections.Custom 0.12));
    sub 1 (Collections.pdsd6 (Collections.Custom 0.015));
    sub 1 (Collections.pdsd8 (Collections.Custom 0.06)) ]

let table1 ~jobs ~npn_cache () =
  Format.printf
    "=== TABLE I (reduced scale: timeout %.1fs/instance, %d job%s, npn \
     cache %s) ===@.@."
    bench_timeout jobs
    (if jobs = 1 then "" else "s")
    (if npn_cache then "on" else "off");
  let caches =
    List.map
      (fun (e : Runner.engine) ->
        ( Runner.engine_name e,
          if npn_cache then Some (Stp_synth.Npn_cache.create ()) else None ))
      Runner.all_engines
  in
  let rows =
    List.map
      (fun (c : Collections.t) ->
        Printf.eprintf "[bench] %s (%d instances)\n%!" c.Collections.name
          (List.length c.Collections.functions);
        let aggs =
          List.map
            (fun (e : Runner.engine) ->
              Printf.eprintf "[bench]   engine %s...\n%!" (Runner.engine_name e);
              let agg =
                Runner.run_collection ~timeout:bench_timeout ~jobs
                  ?cache:(List.assoc (Runner.engine_name e) caches)
                  e c.Collections.functions
              in
              Printf.eprintf
                "[bench]     wall %.2fs, speedup %.2fx, cache %d/%d hits\n%!"
                agg.Runner.wall_time (Runner.speedup agg) agg.Runner.cache_hits
                (agg.Runner.cache_hits + agg.Runner.cache_misses);
              agg)
            Runner.all_engines
        in
        (c.Collections.name, List.length c.Collections.functions, aggs))
      (bench_collections ())
  in
  Table.render Format.std_formatter
    ~rows:(List.map (fun (name, _, aggs) -> (name, aggs)) rows);
  Format.printf "@.";
  let open Stp_harness.Report in
  write ~path:"BENCH_table1.json"
    ~meta:
      [ ("source", String "bench/main");
        ("timeout_s", Float bench_timeout);
        ("jobs", Int jobs);
        ("npn_cache", Bool npn_cache) ]
    ~rows;
  Printf.eprintf "[bench] wrote BENCH_table1.json\n%!"

let fig1 () =
  Format.printf "=== FIG 1: STP AllSAT descent for the liar puzzle ===@.@.";
  let phi =
    let open Stp_matrix.Expr in
    let a = var 0 and b = var 1 and c = var 2 in
    ((a <=> not_ b) && (b <=> not_ c)) && (c <=> (not_ a && not_ b))
  in
  let m = Stp_matrix.Canonical.of_expr ~n:3 phi in
  Format.printf "M_phi = %a@.@." Stp_matrix.Matrix.pp m;
  Format.printf "%a@.@." Stp_matrix.Stp_sat.pp_tree (Stp_matrix.Stp_sat.trace m);
  List.iter
    (fun s ->
      Format.printf "solution: a=%b b=%b c=%b@." s.(0) s.(1) s.(2))
    (Stp_matrix.Stp_sat.all_solutions m);
  Format.printf "@."

let fig2 () =
  Format.printf "=== FIG 2: fence families ===@.@.";
  Format.printf "%4s %10s %10s@." "k" "|F_k|" "pruned";
  for k = 1 to 8 do
    Format.printf "%4d %10d %10d@." k
      (List.length (Stp_topology.Fence.generate k))
      (List.length (Stp_topology.Fence.generate_pruned k))
  done;
  Format.printf "@.pruned F_3 (Fig. 2b): ";
  List.iter
    (fun f -> Format.printf "%a " Stp_topology.Fence.pp f)
    (Stp_topology.Fence.generate_pruned 3);
  Format.printf "@.@."

let fig3 () =
  Format.printf "=== FIG 3: valid DAG shapes of F_3 ===@.@.";
  List.iter
    (fun s -> Format.printf "  %a@." Stp_topology.Dag.pp s)
    (Stp_topology.Dag.enumerate 3);
  Format.printf "@.shapes per gate count: ";
  for k = 1 to 7 do
    Format.printf "k=%d:%d " k (List.length (Stp_topology.Dag.enumerate k))
  done;
  Format.printf "@.@."

(* --- Bechamel microbenchmarks: one per reproduced artefact --- *)

let micro () =
  let open Bechamel in
  let fdsd6 = Stp_workloads.Dsd_gen.fdsd ~n:6 ~seed:11 in
  let liar =
    let open Stp_matrix.Expr in
    let a = var 0 and b = var 1 and c = var 2 in
    ((a <=> not_ b) && (b <=> not_ c)) && (c <=> (not_ a && not_ b))
  in
  let synth_options = Stp_synth.Spec.with_timeout 10.0 in
  let tests =
    [ (* Table I's headline path: STP exact synthesis of a DSD function *)
      Test.make ~name:"table1/stp-fdsd6"
        (Staged.stage (fun () ->
             ignore (Stp_synth.Stp_exact.synthesize ~options:synth_options fdsd6)));
      Test.make ~name:"table1/bms-xor4"
        (Staged.stage (fun () ->
             ignore
               (Stp_synth.Baselines.bms ~options:synth_options
                  (Tt.of_hex ~n:4 "6996"))));
      (* Fig. 1: canonical form + AllSAT *)
      Test.make ~name:"fig1/liar-allsat"
        (Staged.stage (fun () ->
             let m = Stp_matrix.Canonical.of_expr ~n:3 liar in
             ignore (Stp_matrix.Stp_sat.all_solutions m)));
      (* Fig. 2: fence enumeration *)
      Test.make ~name:"fig2/fences-k7"
        (Staged.stage (fun () ->
             ignore (Stp_topology.Fence.generate_pruned 7)));
      (* Fig. 3: DAG shape enumeration *)
      Test.make ~name:"fig3/shapes-k5"
        (Staged.stage (fun () -> ignore (Stp_topology.Dag.enumerate 5))) ]
  in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 0.5) ~kde:None () in
  let instance = Toolkit.Instance.monotonic_clock in
  Format.printf "=== Bechamel microbenchmarks (monotonic clock) ===@.@.";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false
          ~predictors:[| Measure.run |]
      in
      let analysed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            Format.printf "%-24s %12.1f ns/run@." name est
          | _ -> Format.printf "%-24s (no estimate)@." name)
        analysed)
    tests;
  Format.printf "@."

(* --- kernel microbenchmarks (--kernels) ---

   ns/op for the four hot Kern operations — quartering (distinct_rows),
   block compatibility, forced-value propagation (force + undo) and
   output assembly — on random packed matrices at 4/5/6 side variables,
   for BOTH implementations (C stubs and the pure-OCaml fallback), so a
   regression in either shows up regardless of which one STP_KERNELS
   selects. Written to BENCH_kernels.json for the CI smoke check. *)

let kernels () =
  let module Kern = Stp_matrix.Kern in
  let open Stp_harness.Report in
  let st = Random.State.make [| 0xbe_c4; 42 |] in
  let rand_bytes words =
    let b = Bytes.create (words * 8) in
    for k = 0 to words - 1 do
      Bytes.set_int64_ne b (k * 8) (Random.State.int64 st Int64.max_int)
    done;
    b
  in
  let time_ns iters f =
    (* one warmup pass, then a timed loop around the op *)
    f ();
    let t0 = Stp_util.Profile.now_ns () in
    for _ = 1 to iters do
      f ()
    done;
    float_of_int (Stp_util.Profile.now_ns () - t0) /. float_of_int iters
  in
  let impls =
    [ ("c", (module Kern.C_ops : Kern.OPS));
      ("ocaml", (module Kern.Ocaml_ops : Kern.OPS)) ]
  in
  let sink = ref 0 in
  let blocks = ref [] in
  Format.printf "=== Kern microbenchmarks (ns/op, %s selected at runtime) ===@.@."
    Kern.impl_name;
  Format.printf "%-14s %4s  %10s %10s@." "op" "vars" "c" "ocaml";
  List.iter
    (fun vars ->
      let bits = 1 lsl vars in
      let w = (bits + 63) / 64 in
      let rows = 16 in
      let mat = rand_bytes (rows * w) in
      let ta = rand_bytes (2 * w) and tb = rand_bytes (2 * w) in
      let frows = rand_bytes (2 * w) in
      let state = Bytes.make (2 * w * 8) '\000' in
      let newly = Bytes.create (w * 8) in
      let inds = rand_bytes (bits * w) in
      let sel = rand_bytes ((bits + 63) / 64) in
      let out = Bytes.create (w * 8) in
      let per_op op =
        let ns =
          List.map
            (fun (impl, ops) ->
              let module K = (val ops : Kern.OPS) in
              let iters, f =
                match op with
                | "distinct_rows" ->
                  (200_000, fun () -> sink := !sink + K.distinct_rows mat rows w 3)
                | "compat" ->
                  (500_000, fun () -> if K.compat ta 0 tb 0 w then incr sink)
                | "force" ->
                  ( 200_000,
                    fun () ->
                      let rc = K.force frows 0 state 0 w newly 0 w 1 1 in
                      sink := !sink + rc;
                      if rc > 0 then K.undo state 0 w newly 0 w )
                | "assemble" ->
                  (100_000, fun () -> K.assemble inds 0 sel 0 bits w out 0)
                | _ -> assert false
              in
              let ns = time_ns iters f in
              blocks :=
                Obj
                  [ ("op", String op); ("vars", Int vars);
                    ("impl", String impl); ("iters", Int iters);
                    ("ns_per_op", Float ns) ]
                :: !blocks;
              ns)
            impls
        in
        match ns with
        | [ c; ml ] -> Format.printf "%-14s %4d  %10.1f %10.1f@." op vars c ml
        | _ -> assert false
      in
      List.iter per_op [ "distinct_rows"; "compat"; "force"; "assemble" ])
    [ 4; 5; 6 ];
  let json =
    Obj
      [ ("source", String "bench/main --kernels");
        ("impl_default", String Kern.impl_name);
        ("blocks", List (List.rev !blocks)) ]
  in
  let oc = open_out "BENCH_kernels.json" in
  output_string oc (to_string json);
  output_char oc '\n';
  close_out oc;
  Format.printf "@.(sink %d)@." (!sink land 1);
  Printf.eprintf "[bench] wrote BENCH_kernels.json\n%!"

(* --- SAT-core microbenchmarks (--sat) ---

   Two parts, written to BENCH_sat.json for the CI smoke check:

   - raw CDCL throughput (propagations/s, conflicts/s) over the
     committed DIMACS mini-corpus in bench/dimacs — every file's verdict
     is cross-checked against the .sat.cnf/.unsat.cnf label;
   - a cold-vs-incremental A/B of the BMS and FEN budget sweeps over an
     NPN4 subsample: same targets, same timeout, one fresh solver per
     budget (cold) against one long-lived solver with per-budget
     selectors (incremental). The process-wide [Solver.Totals] counters
     are snapshotted around each leg, so the conflict/propagation saving
     is visible next to the wall-clock one. *)

let sat_bench ~corpus () =
  let module Solver = Stp_sat.Solver in
  let module Dimacs = Stp_sat.Dimacs in
  let open Stp_harness.Report in
  Format.printf "=== SAT-core microbenchmarks ===@.@.";
  (* corpus throughput *)
  let files =
    Sys.readdir corpus |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".cnf")
    |> List.sort compare
  in
  Format.printf "%-28s %8s %6s %12s %12s@." "file" "result" "reps"
    "props/s" "conflicts/s";
  let corpus_rows =
    List.map
      (fun file ->
        let cnf = Dimacs.parse (read_file (Filename.concat corpus file)) in
        let expected =
          if Filename.check_suffix file ".sat.cnf" then "sat"
          else if Filename.check_suffix file ".unsat.cnf" then "unsat"
          else "unknown"
        in
        let result = ref Solver.Unknown in
        let props = ref 0 and conflicts = ref 0 and reps = ref 0 in
        let t0 = Stp_util.Profile.now_ns () in
        (* repeat fresh cold solves until the sample is long enough to
           time meaningfully *)
        while
          !reps < 100
          && (!reps < 3
             || Stp_util.Profile.now_ns () - t0 < 300_000_000)
        do
          let solver = Solver.create () in
          Dimacs.load solver cnf;
          result := Solver.solve solver;
          let st = Solver.stats solver in
          props := !props + st.Solver.propagations;
          conflicts := !conflicts + st.Solver.conflicts;
          incr reps
        done;
        let elapsed =
          float_of_int (Stp_util.Profile.now_ns () - t0) *. 1e-9
        in
        let verdict =
          match !result with
          | Solver.Sat -> "sat"
          | Solver.Unsat -> "unsat"
          | Solver.Unknown -> "unknown"
        in
        let ok = expected = "unknown" || verdict = expected in
        if not ok then
          Printf.eprintf "[bench] MISMATCH %s: expected %s, got %s\n%!" file
            expected verdict;
        let props_s = float_of_int !props /. elapsed in
        let conf_s = float_of_int !conflicts /. elapsed in
        Format.printf "%-28s %8s %6d %12.0f %12.0f@." file verdict !reps
          props_s conf_s;
        Obj
          [ ("file", String file); ("expected", String expected);
            ("result", String verdict); ("ok", Bool ok);
            ("reps", Int !reps); ("time_s", Float elapsed);
            ("propagations", Int !props); ("conflicts", Int !conflicts);
            ("props_per_s", Float props_s);
            ("conflicts_per_s", Float conf_s) ])
      files
  in
  (* cold vs incremental budget sweeps *)
  let targets =
    (Collections.npn4 Collections.Default).Collections.functions
    |> List.filteri (fun i _ -> i mod 18 = 0)
  in
  let sweep_timeout = 1.0 in
  Format.printf "@.%-6s %-12s %7s %9s %9s %12s %12s@." "engine" "mode"
    "targets" "solved" "timeouts" "wall_s" "conflicts";
  let sweep_rows =
    List.concat_map
      (fun (name, outcome) ->
        List.map
          (fun incremental ->
            let before = Solver.Totals.snapshot () in
            let t0 = Stp_util.Profile.now_ns () in
            let solved = ref 0 and timeouts = ref 0 in
            List.iter
              (fun f ->
                let options = Stp_synth.Spec.with_timeout sweep_timeout in
                let deadline = Stp_synth.Spec.deadline_of options in
                match outcome ~incremental ~options ~deadline f with
                | `Solved _ -> incr solved
                | `Timeout | `Infeasible -> incr timeouts)
              targets;
            let wall =
              float_of_int (Stp_util.Profile.now_ns () - t0) *. 1e-9
            in
            let after = Solver.Totals.snapshot () in
            let delta key =
              List.assoc key after - List.assoc key before
            in
            let mode = if incremental then "incremental" else "cold" in
            Format.printf "%-6s %-12s %7d %9d %9d %12.2f %12d@." name mode
              (List.length targets) !solved !timeouts wall
              (delta "conflicts");
            Obj
              [ ("engine", String name); ("mode", String mode);
                ("targets", Int (List.length targets));
                ("solved", Int !solved); ("timeouts", Int !timeouts);
                ("wall_s", Float wall);
                ("conflicts", Int (delta "conflicts"));
                ("propagations", Int (delta "propagations"));
                ("solvers", Int (delta "solvers")) ])
          [ false; true ])
      [ ("BMS",
         fun ~incremental ~options ~deadline f ->
           Stp_synth.Baselines.bms_outcome ~incremental ~options ~deadline f);
        ("FEN",
         fun ~incremental ~options ~deadline f ->
           Stp_synth.Baselines.fen_outcome ~incremental ~options ~deadline f) ]
  in
  let json =
    Obj
      [ ("source", String "bench/main --sat");
        ("timeout_s", Float sweep_timeout);
        ("corpus", List corpus_rows);
        ("sweep", List sweep_rows) ]
  in
  let oc = open_out "BENCH_sat.json" in
  output_string oc (to_string json);
  output_char oc '\n';
  close_out oc;
  Format.printf "@.";
  Printf.eprintf "[bench] wrote BENCH_sat.json\n%!"

(* --- SAT-sweeping benchmark (--sweep) ---

   Generated netlists (Ntk_gen, fixed seed) at three scales through
   Sweep.run, each under a wall budget so the 50k-node point stays
   bounded; rows go to BENCH_sweep.json for the CI smoke check. *)
let netsweep () =
  let open Stp_harness.Report in
  let module Sweep = Stp_network.Sweep in
  let module Ntk = Stp_network.Ntk in
  Format.printf "=== SAT SWEEPING (generated netlists, seed 1) ===@.@.";
  Format.printf "%9s %9s %9s %8s %8s %8s %8s %7s %9s@." "nodes" "ands" "after"
    "merges" "refuted" "skipped" "rounds" "verif" "wall_s";
  let rows =
    List.map
      (fun (nodes, timeout) ->
        let ntk = Stp_workloads.Ntk_gen.generate ~seed:1 ~nodes () in
        let options = { Sweep.default_options with Sweep.timeout } in
        let _, r = Sweep.run ~options ntk in
        Format.printf "%9d %9d %9d %8d %8d %8d %8d %7b %9.2f@." nodes
          r.Sweep.ands_before r.Sweep.ands_after r.Sweep.merges
          r.Sweep.pairs_refuted r.Sweep.pairs_skipped r.Sweep.rounds
          r.Sweep.verified r.Sweep.elapsed;
        Obj
          [ ("nodes", Int nodes);
            ("timeout_s", Float timeout);
            ("pis", Int (Ntk.num_pis ntk));
            ("pos", Int (Ntk.num_pos ntk));
            ("ands_before", Int r.Sweep.ands_before);
            ("ands_after", Int r.Sweep.ands_after);
            ("gain", Int (r.Sweep.ands_before - r.Sweep.ands_after));
            ("depth_before", Int r.Sweep.depth_before);
            ("depth_after", Int r.Sweep.depth_after);
            ("classes", Int r.Sweep.classes);
            ("candidates", Int r.Sweep.candidates);
            ("pairs_proved", Int r.Sweep.pairs_proved);
            ("pairs_refuted", Int r.Sweep.pairs_refuted);
            ("pairs_skipped", Int r.Sweep.pairs_skipped);
            ("merges", Int r.Sweep.merges);
            ("rounds", Int r.Sweep.rounds);
            ("cex_patterns", Int r.Sweep.cex_patterns);
            ("sat_vars", Int r.Sweep.sat_vars);
            ("sat_conflicts", Int r.Sweep.sat.Stp_sat.Solver.conflicts);
            ("sat_propagations", Int r.Sweep.sat.Stp_sat.Solver.propagations);
            ("verified", Bool r.Sweep.verified);
            ("verify_method", String r.Sweep.verify_method);
            ("wall_s", Float r.Sweep.elapsed) ])
      [ (5_000, 10.0); (20_000, 30.0); (50_000, 60.0) ]
  in
  let json =
    Obj
      [ ("source", String "bench/main --sweep");
        ("seed", Int 1);
        ("rows", List rows) ]
  in
  let oc = open_out "BENCH_sweep.json" in
  output_string oc (to_string json);
  output_char oc '\n';
  close_out oc;
  Format.printf "@.";
  Printf.eprintf "[bench] wrote BENCH_sweep.json\n%!"

(* Ablations over the engine's design choices (DESIGN.md section 3):
   DSD peeling, and first-topology vs exhaustive all-solutions. All
   timing below reads the one monotonic source, [Profile.now_ns]. *)
let ablations () =
  Format.printf "=== ABLATIONS ===@.@.";
  let run name options fns =
    let t0 = Stp_util.Profile.now_ns () in
    let solved = ref 0 and sols = ref 0 in
    Stp_telemetry.Trace.span "bench.ablation" ~args:[ ("name", name) ]
      (fun () ->
        List.iter
          (fun f ->
            match Stp_synth.Stp_exact.synthesize ~options f with
            | { Stp_synth.Spec.status = Stp_synth.Spec.Solved; chains; _ } ->
              incr solved;
              sols := !sols + List.length chains
            | _ -> ())
          fns);
    let elapsed =
      float_of_int (Stp_util.Profile.now_ns () - t0) *. 1e-9
    in
    Stp_telemetry.Hist.observe_s
      (Stp_telemetry.Hist.get "bench/ablation")
      elapsed;
    Format.printf "%-36s solved %2d/%2d, %5d chains, %6.2fs@." name !solved
      (List.length fns) !sols elapsed
  in
  let pdsd6 = Stp_workloads.Dsd_gen.pdsd_collection ~n:6 ~count:10 ~seed:303 in
  let base = Stp_synth.Spec.with_timeout bench_timeout in
  run "PDSD6 with DSD peeling (default)" base pdsd6;
  run "PDSD6 without DSD peeling"
    { base with Stp_synth.Spec.use_dsd = false }
    pdsd6;
  let maj_like =
    [ Tt.of_hex ~n:3 "e8"; Tt.of_hex ~n:3 "ca"; Tt.of_hex ~n:4 "8ff8" ]
  in
  run "primes, first topology (default)" base maj_like;
  run "primes, all shapes"
    { base with Stp_synth.Spec.all_shapes = true }
    maj_like;
  Format.printf "@."

let () =
  let open Cmdliner in
  let module Cli = Stp_harness.Cli in
  let kernels_flag =
    Arg.(
      value & flag
      & info [ "kernels" ]
          ~doc:
            "Run only the Kern multi-word kernel microbenchmarks (both the C \
             stubs and the pure-OCaml fallback) and write \
             BENCH_kernels.json.")
  in
  let sat_flag =
    Arg.(
      value & flag
      & info [ "sat" ]
          ~doc:
            "Run only the SAT-core microbenchmarks (DIMACS corpus \
             throughput, cold-vs-incremental budget-sweep A/B) and write \
             BENCH_sat.json.")
  in
  let corpus =
    Arg.(
      value
      & opt string "bench/dimacs"
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Directory of .cnf files for the --sat corpus benchmark.")
  in
  let sweep_flag =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:
            "Run only the SAT-sweeping benchmark (generated netlists at \
             three scales) and write BENCH_sweep.json.")
  in
  let run jobs no_npn_cache profile trace metrics kernels_only sat_only
      sweep_only corpus =
    Cli.with_telemetry ~trace ~metrics @@ fun () ->
    Stp_util.Profile.set_enabled profile;
    if kernels_only then kernels ()
    else if sat_only then sat_bench ~corpus ()
    else if sweep_only then netsweep ()
    else begin
      fig2 ();
      fig3 ();
      fig1 ();
      micro ();
      kernels ();
      ablations ();
      table1 ~jobs:(Cli.resolve_jobs jobs) ~npn_cache:(not no_npn_cache) ()
    end
  in
  let cmd =
    Cmd.v
      (Cmd.info "bench" ~doc:"regenerate the paper's tables and figures")
      Term.(
        const run $ Cli.jobs $ Cli.no_npn_cache $ Cli.profile $ Cli.trace
        $ Cli.metrics $ kernels_flag $ sat_flag $ sweep_flag $ corpus)
  in
  exit (Cmd.eval cmd)
