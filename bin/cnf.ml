(* cnf: solve a DIMACS CNF file with the in-repo CDCL solver.

   Prints the classic competition verdict line ("s SATISFIABLE" /
   "s UNSATISFIABLE" / "s UNKNOWN") plus one "c ..." stats line.
   [--drat] records a DRAT proof during the solve and, on UNSAT,
   replays it through the in-repo forward RUP checker ({!Stp_sat.Drat});
   a proof that fails to check exits with code 3. Exit codes follow the
   SAT-competition convention: 10 satisfiable, 20 unsatisfiable
   (certified when [--drat] is on), 0 unknown. *)

module Solver = Stp_sat.Solver
module Dimacs = Stp_sat.Dimacs
module Drat = Stp_sat.Drat

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run file drat timeout =
  let cnf = Dimacs.parse (read_file file) in
  let solver = Solver.create () in
  Solver.set_proof solver drat;
  Dimacs.load solver cnf;
  let deadline =
    if timeout > 0.0 then Stp_util.Deadline.after timeout
    else Stp_util.Deadline.never
  in
  let t0 = Stp_util.Profile.now_ns () in
  let result = Solver.solve ~deadline solver in
  let elapsed = float_of_int (Stp_util.Profile.now_ns () - t0) *. 1e-9 in
  let st = Solver.stats solver in
  Printf.printf
    "c %s: %.3fs, %d decisions, %d propagations, %d conflicts, %d restarts, \
     %d learnt (%d core)\n"
    (Filename.basename file) elapsed st.Solver.decisions
    st.Solver.propagations st.Solver.conflicts st.Solver.restarts
    st.Solver.learned st.Solver.learned_core;
  match result with
  | Solver.Sat ->
    (* Re-check the model against every clause before claiming SAT. *)
    let ok =
      List.for_all
        (fun clause ->
          List.exists
            (fun l ->
              Solver.value solver (Stp_sat.Lit.var l) = Stp_sat.Lit.sign l)
            clause)
        cnf.Dimacs.clauses
    in
    if not ok then begin
      print_endline "s UNKNOWN";
      prerr_endline "cnf: model failed verification";
      exit 3
    end;
    print_endline "s SATISFIABLE";
    exit 10
  | Solver.Unsat ->
    if drat then begin
      let steps = Solver.proof solver in
      Printf.printf "c drat: %d steps\n" (List.length steps);
      match
        Drat.check ~num_vars:cnf.Dimacs.num_vars ~clauses:cnf.Dimacs.clauses
          steps
      with
      | Ok () -> print_endline "c drat: proof verified"
      | Error msg ->
        print_endline "s UNKNOWN";
        prerr_endline ("cnf: DRAT check failed: " ^ msg);
        exit 3
    end;
    print_endline "s UNSATISFIABLE";
    exit 20
  | Solver.Unknown ->
    print_endline "s UNKNOWN";
    exit 0

let () =
  let open Cmdliner in
  let file =
    Arg.(
      required
      & pos 0 (some non_dir_file) None
      & info [] ~docv:"FILE" ~doc:"DIMACS CNF input file.")
  in
  let drat =
    Arg.(
      value & flag
      & info [ "drat" ]
          ~doc:
            "Record a DRAT proof while solving and verify UNSAT answers \
             with the in-repo RUP checker.")
  in
  let timeout =
    Arg.(
      value & opt float 0.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Give up after this many seconds (0 disables).")
  in
  let cmd =
    Cmd.v
      (Cmd.info "cnf" ~doc:"solve a DIMACS CNF with the exact-synthesis CDCL core")
      Term.(const run $ file $ drat $ timeout)
  in
  exit (Cmd.eval cmd)
