(* Regenerate Table I: four engines over the five function collections. *)

open Cmdliner

let run collections timeout scale jobs no_npn_cache json_path csv cross_check
    profile limit =
  let jobs =
    if jobs <= 0 then Stp_parallel.Pool.default_jobs () else jobs
  in
  Stp_util.Profile.set_enabled profile;
  let scale =
    match scale with
    | s when s <= 0.0 -> Stp_workloads.Collections.Default
    | 1.0 -> Stp_workloads.Collections.Paper
    | s -> Stp_workloads.Collections.Custom s
  in
  let available =
    Stp_workloads.Collections.table1 scale
    @ [ Stp_workloads.Collections.npn4_all scale ]
  in
  let selected =
    match collections with
    | [] -> Stp_workloads.Collections.table1 scale
    | names ->
      let names = List.map String.lowercase_ascii names in
      let known =
        List.map
          (fun (c : Stp_workloads.Collections.t) ->
            String.lowercase_ascii c.name)
          available
      in
      List.iter
        (fun n ->
          if not (List.mem n known) then (
            Printf.eprintf "table1: unknown collection %S (known: %s)\n" n
              (String.concat ", " known);
            exit 124))
        names;
      List.filter
        (fun (c : Stp_workloads.Collections.t) ->
          List.mem (String.lowercase_ascii c.name) names)
        available
  in
  let selected =
    if limit <= 0 then selected
    else
      List.map
        (fun (c : Stp_workloads.Collections.t) ->
          { c with
            Stp_workloads.Collections.functions =
              List.filteri (fun i _ -> i < limit) c.functions })
        selected
  in
  (* One NPN cache per engine, carried across collections: entries store
     the engine's own chain sets, so caches must not be shared between
     engines. *)
  let caches =
    List.map
      (fun (e : Stp_harness.Runner.engine) ->
        ( e.Stp_harness.Runner.engine_name,
          if no_npn_cache then None
          else Some (Stp_synth.Npn_cache.create ()) ))
      Stp_harness.Runner.all_engines
  in
  let rows =
    List.map
      (fun (c : Stp_workloads.Collections.t) ->
        Printf.eprintf "[table1] %s: %d instances, timeout %.1fs, %d job%s%s\n%!"
          c.name
          (List.length c.functions)
          timeout jobs
          (if jobs = 1 then "" else "s")
          (if no_npn_cache then "" else ", npn-cache on");
        let optima : (int, int) Hashtbl.t = Hashtbl.create 97 in
        let check_optimum name i (r : Stp_synth.Spec.result) =
          match (r.status, r.gates) with
          | Stp_synth.Spec.Solved, Some g -> (
            match Hashtbl.find_opt optima i with
            | None -> Hashtbl.replace optima i g
            | Some g0 ->
              if g0 <> g then
                Printf.eprintf
                  "[table1] WARNING: %s instance %d: %s found %d gates, \
                   others %d\n%!"
                  c.name i name g g0)
          | _ -> ()
        in
        let aggs =
          List.map
            (fun (e : Stp_harness.Runner.engine) ->
              let on_instance i _f r =
                if cross_check then check_optimum e.engine_name i r
              in
              let cache = List.assoc e.engine_name caches in
              let agg =
                Stp_harness.Runner.run_collection ~timeout ~jobs ?cache
                  ~on_instance e c.functions
              in
              Printf.eprintf
                "[table1]   %s: mean %.3fs, %d t/o, %d ok, wall %.2fs \
                 (speedup %.2fx, cache %d/%d hits)\n%!"
                e.engine_name agg.mean_time agg.timeouts agg.solved
                agg.wall_time
                (Stp_harness.Runner.speedup agg)
                agg.cache_hits
                (agg.cache_hits + agg.cache_misses);
              (match agg.Stp_harness.Runner.profile with
               | Some p ->
                 Format.eprintf "[table1]   %s profile:@.%a@.%!" e.engine_name
                   Stp_util.Profile.pp p
               | None -> ());
              agg)
            Stp_harness.Runner.all_engines
        in
        (c.name, List.length c.functions, aggs))
      selected
  in
  let table_rows = List.map (fun (name, _, aggs) -> (name, aggs)) rows in
  if csv then Stp_harness.Table.render_csv Format.std_formatter ~rows:table_rows
  else Stp_harness.Table.render Format.std_formatter ~rows:table_rows;
  match json_path with
  | "" -> ()
  | path ->
    let open Stp_harness.Report in
    write ~path
      ~meta:
        [ ("source", String "bin/table1");
          ("timeout_s", Float timeout);
          ("jobs", Int jobs);
          ("npn_cache", Bool (not no_npn_cache)) ]
      ~rows;
    Printf.eprintf "[table1] wrote %s\n%!" path

let collections_arg =
  let doc =
    "Collections to run (npn4, fdsd6, fdsd8, pdsd6, pdsd8; also npn4all, \
     the all-65536-functions sweep that showcases the NPN cache); default: \
     the paper's five."
  in
  Arg.(value & opt_all string [] & info [ "c"; "collection" ] ~docv:"NAME" ~doc)

let timeout_arg =
  let doc = "Per-instance timeout in seconds (the paper used 180)." in
  Arg.(value & opt float 5.0 & info [ "t"; "timeout" ] ~docv:"SECONDS" ~doc)

let scale_arg =
  let doc =
    "Instance-count scale: 0 = reduced defaults, 1 = paper scale, other \
     values multiply the paper's counts."
  in
  Arg.(value & opt float 0.0 & info [ "scale" ] ~docv:"FACTOR" ~doc)

let jobs_arg =
  let doc =
    "Number of domains to fan instances over (0 = auto: the recommended \
     domain count capped at 8; 1 = sequential). Aggregates are identical \
     across job counts; only wall-clock changes. The effective value is \
     printed in each collection header."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let no_cache_arg =
  let doc =
    "Disable the NPN-class synthesis cache (enabled by default: optimum \
     chains found for one member of an NPN class are replayed, \
     transform-adjusted and re-verified, for every other member)."
  in
  Arg.(value & flag & info [ "no-npn-cache" ] ~doc)

let json_arg =
  let doc =
    "Write machine-readable aggregates to this file (empty string \
     disables)."
  in
  Arg.(
    value
    & opt string "BENCH_table1.json"
    & info [ "json" ] ~docv:"PATH" ~doc)

let csv_arg =
  let doc = "Emit CSV instead of the formatted table." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let cross_arg =
  let doc = "Warn when two engines disagree on an instance's optimum size." in
  Arg.(value & flag & info [ "cross-check" ] ~doc)

let profile_arg =
  let doc =
    "Collect per-stage timers and hot-path counters (decompose, \
     feasibility, verification, cube merges, memo hit rates) for every \
     engine/collection run; printed to stderr and embedded under \
     $(b,profile) in the JSON output."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let limit_arg =
  let doc =
    "Keep only the first $(docv) instances of each selected collection \
     (0 = all); for smoke runs and CI."
  in
  Arg.(value & opt int 0 & info [ "limit" ] ~docv:"N" ~doc)

let cmd =
  let doc = "regenerate Table I of the paper" in
  Cmd.v
    (Cmd.info "table1" ~doc)
    Term.(
      const run $ collections_arg $ timeout_arg $ scale_arg $ jobs_arg
      $ no_cache_arg $ json_arg $ csv_arg $ cross_arg $ profile_arg
      $ limit_arg)

let () = exit (Cmd.eval cmd)
