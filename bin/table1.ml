(* Regenerate Table I: four engines over the five function collections. *)

open Cmdliner

let run collections timeout scale csv cross_check =
  let scale =
    match scale with
    | s when s <= 0.0 -> Stp_workloads.Collections.Default
    | 1.0 -> Stp_workloads.Collections.Paper
    | s -> Stp_workloads.Collections.Custom s
  in
  let available = Stp_workloads.Collections.table1 scale in
  let selected =
    match collections with
    | [] -> available
    | names ->
      List.filter
        (fun (c : Stp_workloads.Collections.t) ->
          List.mem (String.lowercase_ascii c.name) names)
        available
  in
  let rows =
    List.map
      (fun (c : Stp_workloads.Collections.t) ->
        Printf.eprintf "[table1] %s: %d instances, timeout %.1fs\n%!" c.name
          (List.length c.functions) timeout;
        let optima : (int, int) Hashtbl.t = Hashtbl.create 97 in
        let check_optimum name i (r : Stp_synth.Spec.result) =
          match (r.status, r.gates) with
          | Stp_synth.Spec.Solved, Some g -> (
            match Hashtbl.find_opt optima i with
            | None -> Hashtbl.replace optima i g
            | Some g0 ->
              if g0 <> g then
                Printf.eprintf
                  "[table1] WARNING: %s instance %d: %s found %d gates, \
                   others %d\n%!"
                  c.name i name g g0)
          | _ -> ()
        in
        let aggs =
          List.map
            (fun (e : Stp_harness.Runner.engine) ->
              let on_instance i _f r =
                if cross_check then check_optimum e.engine_name i r
              in
              let agg =
                Stp_harness.Runner.run_collection ~timeout ~on_instance e
                  c.functions
              in
              Printf.eprintf "[table1]   %s: mean %.3fs, %d t/o, %d ok\n%!"
                e.engine_name agg.mean_time agg.timeouts agg.solved;
              agg)
            Stp_harness.Runner.all_engines
        in
        (c.name, aggs))
      selected
  in
  if csv then Stp_harness.Table.render_csv Format.std_formatter ~rows
  else Stp_harness.Table.render Format.std_formatter ~rows

let collections_arg =
  let doc =
    "Collections to run (npn4, fdsd6, fdsd8, pdsd6, pdsd8); default all."
  in
  Arg.(value & opt_all string [] & info [ "c"; "collection" ] ~docv:"NAME" ~doc)

let timeout_arg =
  let doc = "Per-instance timeout in seconds (the paper used 180)." in
  Arg.(value & opt float 5.0 & info [ "t"; "timeout" ] ~docv:"SECONDS" ~doc)

let scale_arg =
  let doc =
    "Instance-count scale: 0 = reduced defaults, 1 = paper scale, other \
     values multiply the paper's counts."
  in
  Arg.(value & opt float 0.0 & info [ "scale" ] ~docv:"FACTOR" ~doc)

let csv_arg =
  let doc = "Emit CSV instead of the formatted table." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let cross_arg =
  let doc = "Warn when two engines disagree on an instance's optimum size." in
  Arg.(value & flag & info [ "cross-check" ] ~doc)

let cmd =
  let doc = "regenerate Table I of the paper" in
  Cmd.v
    (Cmd.info "table1" ~doc)
    Term.(
      const run $ collections_arg $ timeout_arg $ scale_arg $ csv_arg
      $ cross_arg)

let () = exit (Cmd.eval cmd)
