(* Regenerate Table I: four engines over the five function collections. *)

open Cmdliner
module Runner = Stp_harness.Runner
module Cli = Stp_harness.Cli
module Store = Stp_store.Store

let run collections timeout scale jobs no_npn_cache json_path csv cross_check
    profile limit store_path trace metrics =
  Cli.with_telemetry ~trace ~metrics @@ fun () ->
  let jobs = Cli.resolve_jobs jobs in
  Stp_util.Profile.set_enabled profile;
  let scale =
    match scale with
    | s when s <= 0.0 -> Stp_workloads.Collections.Default
    | 1.0 -> Stp_workloads.Collections.Paper
    | s -> Stp_workloads.Collections.Custom s
  in
  let available =
    Stp_workloads.Collections.table1 scale
    @ [ Stp_workloads.Collections.npn4_all scale ]
  in
  let selected =
    match collections with
    | [] -> Stp_workloads.Collections.table1 scale
    | names ->
      let names = List.map String.lowercase_ascii names in
      let known =
        List.map
          (fun (c : Stp_workloads.Collections.t) ->
            String.lowercase_ascii c.name)
          available
      in
      List.iter
        (fun n ->
          if not (List.mem n known) then (
            Printf.eprintf "table1: unknown collection %S (known: %s)\n" n
              (String.concat ", " known);
            exit 124))
        names;
      List.filter
        (fun (c : Stp_workloads.Collections.t) ->
          List.mem (String.lowercase_ascii c.name) names)
        available
  in
  let selected =
    if limit <= 0 then selected
    else
      List.map
        (fun (c : Stp_workloads.Collections.t) ->
          { c with
            Stp_workloads.Collections.functions =
              List.filteri (fun i _ -> i < limit) c.functions })
        selected
  in
  let store =
    match store_path with
    | "" -> None
    | path ->
      let s = Store.load ~path in
      let st = Store.stats s in
      Printf.eprintf "[table1] store %s: %d classes in %d sections%s\n%!" path
        st.Store.classes st.Store.sections
        (if st.Store.skipped = 0 then ""
         else Printf.sprintf " (%d corrupt records skipped)" st.Store.skipped);
      Store.attach_telemetry s;
      Some s
  in
  (* One NPN cache per engine, carried across collections: entries store
     the engine's own chain sets, so caches must not be shared between
     engines. A persistent store seeds each cache from the section named
     after its engine and absorbs it back at the end of the run. *)
  let caches =
    List.map
      (fun (e : Runner.engine) ->
        let name = Runner.engine_name e in
        let cache =
          if no_npn_cache then None
          else begin
            let c = Stp_synth.Npn_cache.create () in
            (match store with
             | Some s ->
               let st = Store.seed s ~section:name c in
               if st.Store.seeded > 0 || st.Store.seed_rejected > 0 then
                 Printf.eprintf "[table1] store: seeded %d %s classes%s\n%!"
                   st.Store.seeded name
                   (if st.Store.seed_rejected = 0 then ""
                    else
                      Printf.sprintf " (%d rejected by re-validation)"
                        st.Store.seed_rejected)
             | None -> ());
            Some c
          end
        in
        (name, cache))
      Runner.all_engines
  in
  let rows =
    List.map
      (fun (c : Stp_workloads.Collections.t) ->
        Printf.eprintf "[table1] %s: %d instances, timeout %.1fs, %d job%s%s\n%!"
          c.name
          (List.length c.functions)
          timeout jobs
          (if jobs = 1 then "" else "s")
          (if no_npn_cache then "" else ", npn-cache on");
        let optima : (int, int) Hashtbl.t = Hashtbl.create 97 in
        let check_optimum name i (r : Stp_synth.Spec.result) =
          match (r.status, r.gates) with
          | Stp_synth.Spec.Solved, Some g -> (
            match Hashtbl.find_opt optima i with
            | None -> Hashtbl.replace optima i g
            | Some g0 ->
              if g0 <> g then
                Printf.eprintf
                  "[table1] WARNING: %s instance %d: %s found %d gates, \
                   others %d\n%!"
                  c.name i name g g0)
          | _ -> ()
        in
        let aggs =
          List.map
            (fun (e : Runner.engine) ->
              let name = Runner.engine_name e in
              let on_instance i _f r =
                if cross_check then check_optimum name i r
              in
              let cache = List.assoc name caches in
              let agg =
                Runner.run_collection ~timeout ~jobs ?cache ~on_instance e
                  c.functions
              in
              Printf.eprintf
                "[table1]   %s: mean %.3fs, %d t/o, %d ok, wall %.2fs \
                 (speedup %.2fx, cache %d/%d hits)\n%!"
                name agg.mean_time agg.timeouts agg.solved agg.wall_time
                (Runner.speedup agg) agg.cache_hits
                (agg.cache_hits + agg.cache_misses);
              (match agg.Runner.profile with
               | Some p ->
                 Format.eprintf "[table1]   %s profile:@.%a@.%!" name
                   Stp_util.Profile.pp p
               | None -> ());
              agg)
            Runner.all_engines
        in
        (c.name, List.length c.functions, aggs))
      selected
  in
  (match store with
   | None -> ()
   | Some s ->
     let fresh, dup =
       List.fold_left
         (fun (fresh, dup) (section, cache) ->
           match cache with
           | None -> (fresh, dup)
           | Some c ->
             let st = Store.absorb s ~section c in
             (fresh + st.Store.absorbed, dup + st.Store.duplicates))
         (0, 0) caches
     in
     Store.flush s;
     let st = Store.stats s in
     Printf.eprintf
       "[table1] store: flushed %d classes (%d new, %d already known, %d \
        bytes) to %s\n%!"
       st.Store.classes fresh dup st.Store.flush_bytes (Store.path s));
  let table_rows = List.map (fun (name, _, aggs) -> (name, aggs)) rows in
  if csv then Stp_harness.Table.render_csv Format.std_formatter ~rows:table_rows
  else Stp_harness.Table.render Format.std_formatter ~rows:table_rows;
  match json_path with
  | "" -> ()
  | path ->
    let open Stp_harness.Report in
    write ~path
      ~meta:
        [ ("source", String "bin/table1");
          ("timeout_s", Float timeout);
          ("jobs", Int jobs);
          ("npn_cache", Bool (not no_npn_cache));
          ("store",
           match store with
           | None -> Null
           | Some s -> Store.stats_json s) ]
      ~rows;
    Printf.eprintf "[table1] wrote %s\n%!" path

let collections_arg =
  let doc =
    "Collections to run (npn4, fdsd6, fdsd8, pdsd6, pdsd8; also npn4all, \
     the all-65536-functions sweep that showcases the NPN cache); default: \
     the paper's five."
  in
  Arg.(value & opt_all string [] & info [ "c"; "collection" ] ~docv:"NAME" ~doc)

let scale_arg =
  let doc =
    "Instance-count scale: 0 = reduced defaults, 1 = paper scale, other \
     values multiply the paper's counts."
  in
  Arg.(value & opt float 0.0 & info [ "scale" ] ~docv:"FACTOR" ~doc)

let csv_arg =
  let doc = "Emit CSV instead of the formatted table." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let cross_arg =
  let doc = "Warn when two engines disagree on an instance's optimum size." in
  Arg.(value & flag & info [ "cross-check" ] ~doc)

let limit_arg =
  let doc =
    "Keep only the first $(docv) instances of each selected collection \
     (0 = all); for smoke runs and CI."
  in
  Arg.(value & opt int 0 & info [ "limit" ] ~docv:"N" ~doc)

let cmd =
  let doc = "regenerate Table I of the paper" in
  Cmd.v
    (Cmd.info "table1" ~doc)
    Term.(
      const run $ collections_arg
      $ Cli.timeout ~doc:"Per-instance timeout in seconds (the paper used 180)."
          ()
      $ scale_arg $ Cli.jobs $ Cli.no_npn_cache
      $ Cli.json ~default:"BENCH_table1.json" ()
      $ csv_arg $ cross_arg $ Cli.profile $ limit_arg $ Cli.store
      $ Cli.trace $ Cli.metrics)

let () = exit (Cmd.eval cmd)
