(* Soak bench for the sharded synthesis service: replay a large
   Zipf-distributed NPN4 request stream (hot head, cold tail) through
   many pipelined clients and report latency quantiles, throughput,
   cache hit rate, per-client ordering violations and per-shard balance
   as BENCH_synthd.json.

   By default the harness forks its own service on a temp Unix socket;
   --socket/--tcp instead aims it at an already-running service.
   --kill-after K exercises crash recovery mid-run: once K responses
   have arrived, one worker is killed with SIGKILL — every request must
   still be answered. *)

open Cmdliner
module Cli = Stp_harness.Cli
module Wire = Stp_service.Wire
module Service = Stp_service.Service
module Json = Stp_telemetry.Json
module Hist = Stp_telemetry.Hist
module Zipf = Stp_workloads.Zipf

let now_ns = Stp_util.Profile.now_ns

type client = {
  conn : Wire.conn;
  pending : (int * int) Queue.t;  (* request id, send timestamp ns *)
  mutable quota : int;            (* requests this client still owns *)
  mutable sent : int;
}

let request_line ~id ~n ~tt ~timeout =
  Json.to_string
    (Json.Obj
       [ ("id", Json.Int id);
         ("n", Json.Int n);
         ("tt", Json.String tt);
         ("timeout", Json.Float timeout) ])

(* One blocking control round-trip on its own connection, outside the
   measured stream. *)
let control_round_trip addr line =
  let fd = Wire.connect addr in
  Wire.send_lines fd [ line ];
  let r = Wire.line_reader fd in
  let resp = Wire.next_line r in
  Unix.close fd;
  match resp with
  | Some l -> (
    match Json.of_string l with
    | Ok j -> Some j
    | Error _ -> None)
  | None -> None

let shard_pids stats =
  match Json.member "shards" stats with
  | Some (Json.List shards) ->
    List.filter_map
      (fun s ->
        match (Json.member "alive" s, Json.member "pid" s) with
        | Some (Json.Bool true), Some (Json.Int pid) -> Some pid
        | _ -> None)
      shards
  | _ -> []

let incr_count tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let run requests clients window seed alpha timeout socket tcp shards jobs
    store compact_bytes kill_after json_path =
  if requests < 1 then begin
    prerr_endline "soak: --requests must be >= 1";
    exit 124
  end;
  let external_service = socket <> "" || tcp <> "" in
  let sock_path =
    if external_service then socket
    else
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "stp-soak-%d.sock" (Unix.getpid ()))
  in
  let addr =
    if tcp <> "" && socket = "" then
      match Wire.parse_tcp tcp with
      | host, port -> Wire.Tcp (host, port)
      | exception Failure msg ->
        prerr_endline ("soak: " ^ msg);
        exit 124
    else Wire.Unix_path sock_path
  in
  let service_pid =
    if external_service then None
    else begin
      match Unix.fork () with
      | 0 ->
        (try
           Service.serve
             { Service.shards = max 1 shards;
               jobs = Cli.resolve_jobs jobs;
               timeout;
               store;
               socket = sock_path;
               tcp = "";
               no_npn_cache = false;
               window;
               compact_dead_bytes = compact_bytes }
         with e ->
           Printf.eprintf "[soak] service crashed: %s\n%!"
             (Printexc.to_string e);
           Unix._exit 1);
        Unix._exit 0
      | pid ->
        Printf.eprintf "[soak] spawned service pid %d on %s\n%!" pid sock_path;
        Some pid
    end
  in
  Fun.protect ~finally:(fun () ->
      match service_pid with
      | Some pid -> (
        (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
        match Unix.waitpid [] pid with
        | _, Unix.WEXITED 0 -> Printf.eprintf "[soak] service exited 0\n%!"
        | _, st ->
          let what =
            match st with
            | Unix.WEXITED c -> Printf.sprintf "exited %d" c
            | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
            | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s
          in
          Printf.eprintf "[soak] service %s\n%!" what;
          exit 1
        | exception Unix.Unix_error _ -> ())
      | None -> ())
  @@ fun () ->
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  (* Wire.connect retries while the service binds its socket. *)
  let zipf = Zipf.create ~seed ~alpha () in
  let clients_n = max 1 clients in
  let conns =
    Array.init clients_n (fun i ->
        let base = requests / clients_n in
        let quota = base + if i < requests mod clients_n then 1 else 0 in
        { conn = Wire.make (Wire.connect addr);
          pending = Queue.create ();
          quota;
          sent = 0 })
  in
  let hist = Hist.make "soak/latency" in
  let statuses = Hashtbl.create 8 in
  let sources = Hashtbl.create 8 in
  let answered = ref 0 in
  let ordering_violations = ref 0 in
  let killed_pid = ref None in
  let next_id = ref 0 in
  let top_up c =
    while c.sent < c.quota && Queue.length c.pending < window do
      let id = !next_id in
      incr next_id;
      let n, tt = Zipf.next zipf in
      Wire.queue_line c.conn (request_line ~id ~n ~tt ~timeout);
      Queue.add (id, now_ns ()) c.pending;
      c.sent <- c.sent + 1
    done
  in
  let progress_every = max 1 (requests / 20) in
  let handle_response c line =
    if String.trim line <> "" then begin
      (match Json.of_string line with
       | Error _ -> incr_count statuses "unparseable"
       | Ok j ->
         (* Responses must arrive in this client's request order. *)
         (match (Json.member "id" j, Queue.take_opt c.pending) with
          | Some (Json.Int id), Some (expected, t0) ->
            if id <> expected then incr ordering_violations;
            Hist.observe_ns hist (now_ns () - t0)
          | _, Some (_, t0) ->
            incr ordering_violations;
            Hist.observe_ns hist (now_ns () - t0)
          | _, None -> incr ordering_violations);
         (match Json.member "status" j with
          | Some (Json.String s) -> incr_count statuses s
          | _ -> incr_count statuses "missing");
         (match Json.member "source" j with
          | Some (Json.String s) -> incr_count sources s
          | _ -> ()));
      incr answered;
      if !answered mod progress_every = 0 then
        Printf.eprintf "[soak] %d/%d answered\n%!" !answered requests;
      (* Crash-recovery exercise: SIGKILL one worker mid-run; the
         service must re-dispatch its in-flight requests. *)
      if !killed_pid = None && kill_after > 0 && !answered >= kill_after
      then begin
        match control_round_trip addr {|{"type":"stats"}|} with
        | Some stats -> (
          match shard_pids stats with
          | pid :: _ ->
            Printf.eprintf "[soak] killing shard pid %d after %d responses\n%!"
              pid !answered;
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            killed_pid := Some pid
          | [] -> killed_pid := Some 0)
        | None -> killed_pid := Some 0
      end
    end
  in
  let t_start = now_ns () in
  Array.iter (fun c -> top_up c) conns;
  while !answered < requests do
    let reads =
      Array.to_list conns
      |> List.filter_map (fun c ->
             if Queue.length c.pending > 0 && not (Wire.eof c.conn) then
               Some (Wire.fd c.conn)
             else None)
    in
    let writes =
      Array.to_list conns
      |> List.filter_map (fun c ->
             if Wire.pending_out c.conn > 0 then Some (Wire.fd c.conn)
             else None)
    in
    if reads = [] && writes = [] then begin
      Printf.eprintf "[soak] service closed all connections with %d/%d answered\n%!"
        !answered requests;
      exit 1
    end;
    let readable, writable, _ =
      match Unix.select reads writes [] 1.0 with
      | r -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    Array.iter
      (fun c ->
        if List.mem (Wire.fd c.conn) readable then begin
          List.iter (handle_response c) (Wire.read_lines c.conn);
          top_up c
        end;
        if
          List.mem (Wire.fd c.conn) writable || Wire.pending_out c.conn > 0
        then ignore (Wire.flush_out c.conn);
        if Wire.eof c.conn && Queue.length c.pending > 0 then begin
          Printf.eprintf "[soak] a client connection died with %d responses outstanding\n%!"
            (Queue.length c.pending);
          exit 1
        end)
      conns
  done;
  let wall_s = float_of_int (now_ns () - t_start) *. 1e-9 in
  (* Final service-side stats (per-shard balance) on a fresh conn. *)
  let service_stats = control_round_trip addr {|{"type":"stats"}|} in
  Array.iter (fun c -> Wire.close c.conn) conns;
  let counts tbl =
    Hashtbl.fold (fun k v acc -> (k, Json.Int v) :: acc) tbl []
    |> List.sort compare
  in
  let cache_hits = Option.value ~default:0 (Hashtbl.find_opt sources "cache") in
  let service_block =
    match service_stats with
    | Some j ->
      let take k =
        match Json.member k j with Some v -> [ (k, v) ] | None -> []
      in
      Json.Obj
        (take "shards" @ take "clients" @ take "backpressure"
        @ take "requests" @ take "responses")
    | None -> Json.Null
  in
  let balance =
    match service_stats with
    | None -> Json.Null
    | Some j -> (
      match Json.member "shards" j with
      | Some (Json.List shards) ->
        let routed =
          List.map
            (fun s ->
              match Json.member "routed" s with
              | Some (Json.Int r) -> r
              | _ -> 0)
            shards
        in
        let total = List.fold_left ( + ) 0 routed in
        let mean = float_of_int total /. float_of_int (List.length routed) in
        let maxi = List.fold_left max 0 routed in
        Json.Obj
          [ ("routed", Json.List (List.map (fun r -> Json.Int r) routed));
            ("max_over_mean",
             Json.Float (if mean > 0.0 then float_of_int maxi /. mean else 0.0))
          ]
      | _ -> Json.Null)
  in
  let bench =
    Json.Obj
      [ ("bench", Json.String "synthd_soak");
        ("config",
         Json.Obj
           [ ("requests", Json.Int requests);
             ("clients", Json.Int clients_n);
             ("window", Json.Int window);
             ("seed", Json.Int seed);
             ("alpha", Json.Float alpha);
             ("timeout_s", Json.Float timeout);
             ("shards",
              if external_service then Json.Null else Json.Int (max 1 shards));
             ("jobs",
              if external_service then Json.Null
              else Json.Int (Cli.resolve_jobs jobs));
             ("store",
              if store = "" then Json.Null else Json.String store);
             ("external_service", Json.Bool external_service);
             ("kill_after",
              if kill_after > 0 then Json.Int kill_after else Json.Null) ]);
        ("wall_s", Json.Float wall_s);
        ("throughput_rps", Json.Float (float_of_int requests /. wall_s));
        ("latency", Hist.to_json hist);
        ("statuses", Json.Obj (counts statuses));
        ("sources", Json.Obj (counts sources));
        ("hit_rate", Json.Float (float_of_int cache_hits /. float_of_int requests));
        ("ordering_violations", Json.Int !ordering_violations);
        ("killed_shard_pid",
         match !killed_pid with
         | Some pid when pid > 0 -> Json.Int pid
         | _ -> Json.Null);
        ("balance", balance);
        ("service", service_block) ]
  in
  let oc = open_out json_path in
  output_string oc (Json.to_string bench);
  output_char oc '\n';
  close_out oc;
  let q p = Hist.quantile_ns hist p *. 1e-9 in
  Printf.printf
    "soak: %d requests, %d clients, %.1f req/s; p50 %.4fs p90 %.4fs p99 %.4fs; hit rate %.3f; %d ordering violations -> %s\n"
    requests clients_n
    (float_of_int requests /. wall_s)
    (q 0.5) (q 0.9) (q 0.99)
    (float_of_int cache_hits /. float_of_int requests)
    !ordering_violations json_path;
  if !ordering_violations > 0 then exit 1

let requests_arg =
  let doc = "Total number of requests to replay." in
  Arg.(value & opt int 100_000 & info [ "n"; "requests" ] ~docv:"N" ~doc)

let clients_arg =
  let doc = "Concurrent pipelined client connections." in
  Arg.(value & opt int 8 & info [ "clients" ] ~docv:"N" ~doc)

let window_arg =
  let doc = "Per-client pipeline depth (requests in flight)." in
  Arg.(value & opt int 32 & info [ "window" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "PRNG seed for the Zipf stream." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let alpha_arg =
  let doc =
    "Zipf exponent: class popularity is 1/rank^$(docv) over the 221 \
     synthesizable NPN4 classes (0 = uniform)."
  in
  Arg.(value & opt float 1.1 & info [ "alpha" ] ~docv:"ALPHA" ~doc)

let shards_arg =
  let doc = "Shards for the self-spawned service (ignored with --socket/--tcp)." in
  Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N" ~doc)

let compact_bytes_arg =
  let doc = "Online-compaction threshold for the self-spawned service." in
  Arg.(value & opt int (1 lsl 20) & info [ "compact-bytes" ] ~docv:"BYTES" ~doc)

let kill_after_arg =
  let doc =
    "After $(docv) responses, SIGKILL one shard worker mid-run (crash \
     recovery must still answer every request; 0 disables)."
  in
  Arg.(value & opt int 0 & info [ "kill-after" ] ~docv:"N" ~doc)

let cmd =
  let doc = "Zipf soak bench for the sharded synthesis service" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Replays a deterministic Zipf-distributed stream of NPN4 \
         synthesis requests (random class members, so canonicalisation \
         is exercised) through many pipelined clients against the \
         sharded service, then writes latency quantiles, throughput, \
         cache hit rate, per-client ordering violations and per-shard \
         balance to the --json file. Without --socket/--tcp a service \
         is forked for the duration of the run." ]
  in
  Cmd.v
    (Cmd.info "soak" ~doc ~man)
    Term.(
      const run $ requests_arg $ clients_arg $ window_arg $ seed_arg
      $ alpha_arg
      $ Cli.timeout ~doc:"Per-request deadline in seconds." ()
      $ Cli.socket $ Cli.tcp $ shards_arg $ Cli.jobs $ Cli.store
      $ compact_bytes_arg $ kill_after_arg
      $ Cli.json ~default:"BENCH_synthd.json" ())

let () = exit (Cmd.eval cmd)
