(* Deterministic sweep-scale netlist generation: grow a seeded AIG with
   planted redundancies and write it as AIGER — benchmarks three orders
   of magnitude beyond the committed examples, shipped as a generator
   instead of multi-megabyte files. *)

open Cmdliner
module Ntk = Stp_network.Ntk

let run nodes pis pos redundancy seed out =
  let t0 = Stp_util.Unix_time.now () in
  let ntk = Stp_workloads.Ntk_gen.generate ~seed ~pis ~pos ~redundancy ~nodes () in
  let elapsed = Stp_util.Unix_time.now () -. t0 in
  Printf.eprintf
    "[ntkgen] seed %d: %d PIs, %d POs, %d ANDs, depth %d (%.2fs)\n%!" seed
    (Ntk.num_pis ntk) (Ntk.num_pos ntk) (Ntk.count_live ntk) (Ntk.depth ntk)
    elapsed;
  match out with
  | "-" ->
    print_string (Stp_network.Aiger.to_binary ntk);
    flush stdout
  | path ->
    Stp_network.Aiger.write_file path ntk;
    Printf.eprintf "[ntkgen] wrote %s\n%!" path

let nodes_arg =
  let doc = "Target AND-node count (a floor; outputs fold in leftovers)." in
  Arg.(value & opt int 50_000 & info [ "n"; "nodes" ] ~docv:"N" ~doc)

let pis_arg =
  let doc = "Primary inputs." in
  Arg.(value & opt int 64 & info [ "pis" ] ~docv:"N" ~doc)

let pos_arg =
  let doc = "Primary outputs." in
  Arg.(value & opt int 32 & info [ "pos" ] ~docv:"N" ~doc)

let redundancy_arg =
  let doc =
    "Fraction of generator draws that plant a redundancy template — a \
     function built through two structurally different forms a sweep \
     must prove equivalent (0 to 1)."
  in
  Arg.(value & opt float 0.15 & info [ "redundancy" ] ~docv:"F" ~doc)

let seed_arg =
  let doc = "PRNG seed; the same seed always generates the same netlist." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let out_arg =
  let doc = "Output AIGER path (.aig binary, .aag ASCII); - for stdout." in
  Arg.(value & opt string "-" & info [ "o"; "out" ] ~docv:"PATH" ~doc)

let cmd =
  let doc = "generate seeded sweep-scale AIGER benchmarks" in
  Cmd.v
    (Cmd.info "ntkgen" ~doc)
    Term.(
      const run $ nodes_arg $ pis_arg $ pos_arg $ redundancy_arg $ seed_arg
      $ out_arg)

let () = exit (Cmd.eval cmd)
