(* Batch synthesis daemon: JSON-lines requests (truth table in, optimum
   2-LUT chains out) over stdin/stdout or a Unix socket, backed by the
   persistent NPN cache store. *)

open Cmdliner
module Cli = Stp_harness.Cli
module Store = Stp_store.Store
module Daemon = Stp_store.Daemon

let run jobs timeout store_path socket no_npn_cache profile heartbeat trace
    metrics sends =
  Cli.with_telemetry ~trace ~metrics @@ fun () ->
  Stp_util.Profile.set_enabled profile;
  match sends with
  | _ :: _ ->
    (* Client mode: round-trip request lines through a serving daemon. *)
    if socket = "" then begin
      prerr_endline "synthd: --send needs --socket";
      exit 124
    end;
    (match Daemon.client ~socket sends with
     | responses -> List.iter print_endline responses
     | exception Unix.Unix_error (e, _, _) ->
       Printf.eprintf "synthd: cannot reach daemon at %s: %s\n" socket
         (Unix.error_message e);
       exit 1)
  | [] ->
    let jobs = Cli.resolve_jobs jobs in
    let store =
      match store_path with
      | "" -> None
      | path ->
        let s = Store.load ~path in
        let st = Store.stats s in
        Printf.eprintf "[synthd] store %s: %d classes in %d sections%s\n%!"
          path st.Store.classes st.Store.sections
          (if st.Store.skipped = 0 then ""
           else Printf.sprintf " (%d corrupt records skipped)" st.Store.skipped);
        Some s
    in
    Printf.eprintf
      "[synthd] v%s serving %s: %d job%s, default timeout %.1fs%s%s\n%!"
      Daemon.version
      (if socket = "" then "stdin" else socket)
      jobs
      (if jobs = 1 then "" else "s")
      timeout
      (if no_npn_cache then ", npn-cache off" else "")
      (if heartbeat > 0.0 then
         Printf.sprintf ", heartbeat every %gs" heartbeat
       else "");
    Daemon.serve
      { Daemon.jobs; timeout; store; socket; no_npn_cache;
        heartbeat_s = heartbeat };
    (match store with
     | Some s ->
       let st = Store.stats s in
       Printf.eprintf
         "[synthd] store: %d classes flushed to %s (%d flush%s, %d bytes)\n%!"
         st.Store.classes (Store.path s) st.Store.flushes
         (if st.Store.flushes = 1 then "" else "es")
         st.Store.flush_bytes
     | None -> ());
    if profile then
      Format.eprintf "[synthd] profile:@.%a@.%!" Stp_util.Profile.pp
        (Stp_util.Profile.snapshot ())

let heartbeat_arg =
  let doc =
    "While idle, print a one-line status (uptime, request/batch counts, \
     store size) to stderr every $(docv) seconds (0 disables)."
  in
  Arg.(value & opt float 0.0 & info [ "heartbeat" ] ~docv:"SECONDS" ~doc)

let socket_arg =
  let doc =
    "Serve a Unix domain socket at this path instead of stdin/stdout \
     (created on start, unlinked on shutdown)."
  in
  Arg.(value & opt string "" & info [ "socket" ] ~docv:"PATH" ~doc)

let send_arg =
  let doc =
    "Act as a client: send this JSON request line (repeatable) to the \
     daemon at --socket, print the responses, and exit."
  in
  Arg.(value & opt_all string [] & info [ "send" ] ~docv:"JSON" ~doc)

let cmd =
  let doc = "batch exact-synthesis daemon over the persistent NPN store" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Reads JSON-lines synthesis requests — one object per line, e.g. \
         {\"id\": 1, \"n\": 4, \"tt\": \"8ff8\", \"timeout\": 2.0} — and \
         answers each with the optimum 2-LUT chains, a cache replay when \
         the function's NPN class is already known, or a verified upper \
         bound when the per-request deadline expires. Buffered request \
         backlogs are fanned out over --jobs domains. SIGTERM/SIGINT \
         finish the current batch and flush the store." ]
  in
  Cmd.v
    (Cmd.info "synthd" ~doc ~man)
    Term.(
      const run $ Cli.jobs
      $ Cli.timeout ~doc:"Default per-request deadline in seconds." ()
      $ Cli.store $ socket_arg $ Cli.no_npn_cache $ Cli.profile
      $ heartbeat_arg $ Cli.trace $ Cli.metrics $ send_arg)

let () = exit (Cmd.eval cmd)
