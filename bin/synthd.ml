(* Batch synthesis daemon: JSON-lines requests (truth table in, optimum
   2-LUT chains out) over stdin/stdout or a Unix socket, backed by the
   persistent NPN cache store. With --shards N it instead runs the
   sharded multiplexing service: a front-end select loop over a Unix
   socket and/or TCP, routing requests by canonical NPN class to N
   forked worker daemons with per-shard store sections (append-mode
   persistence, online compaction, crash restarts).

   Two store maintenance modes round the tool out: --compact rewrites a
   store file dropping dead bytes; --merge-out folds shard section
   files (or any store files) back into one store. *)

open Cmdliner
module Cli = Stp_harness.Cli
module Store = Stp_store.Store
module Daemon = Stp_store.Daemon
module Service = Stp_service.Service
module Wire = Stp_service.Wire

let load_store_verbose path =
  let s = Store.load ~path in
  let st = Store.stats s in
  Printf.eprintf "[synthd] store %s: %d classes in %d sections%s\n%!" path
    st.Store.classes st.Store.sections
    (if st.Store.skipped = 0 then ""
     else Printf.sprintf " (%d corrupt records skipped)" st.Store.skipped);
  s

(* Client mode: round-trip request lines through a serving daemon over
   the Unix socket or TCP. *)
let run_client ~socket ~tcp sends =
  let addr =
    if socket <> "" then Wire.Unix_path socket
    else
      let host, port = Wire.parse_tcp tcp in
      Wire.Tcp (host, port)
  in
  match Wire.connect addr with
  | fd ->
    Wire.send_lines fd sends;
    Unix.shutdown fd Unix.SHUTDOWN_SEND;
    let r = Wire.line_reader fd in
    let rec drain () =
      match Wire.next_line r with
      | Some l ->
        print_endline l;
        drain ()
      | None -> ()
    in
    drain ();
    Unix.close fd
  | exception Unix.Unix_error (e, _, _) ->
    Printf.eprintf "synthd: cannot reach daemon at %s: %s\n"
      (if socket <> "" then socket else tcp)
      (Unix.error_message e);
    exit 1

let run_compact store_path =
  if store_path = "" then begin
    prerr_endline "synthd: --compact needs --store";
    exit 124
  end;
  let s = load_store_verbose store_path in
  let c = Store.compact s in
  Printf.printf "compacted %s: %d -> %d bytes (%d reclaimed)\n" store_path
    c.Store.before_bytes c.Store.after_bytes c.Store.reclaimed

let run_merge out srcs =
  if srcs = [] then begin
    prerr_endline "synthd: --merge-out needs source store paths as arguments";
    exit 124
  end;
  let dst = Store.load ~path:out in
  List.iter
    (fun src_path ->
      let src = load_store_verbose src_path in
      let m = Store.merge_from dst src in
      Printf.printf "merged %s: %d new, %d duplicate%s, %d superseded\n"
        src_path m.Store.merged m.Store.merge_duplicates
        (if m.Store.merge_duplicates = 1 then "" else "s")
        m.Store.superseded)
    srcs;
  (* A merge only grows the live table; rewrite for a dead-byte-free
     result file. *)
  ignore (Store.compact dst);
  let st = Store.stats dst in
  Printf.printf "wrote %s: %d classes, %d bytes\n" out st.Store.classes
    st.Store.disk_bytes

let run_service ~shards ~jobs ~timeout ~store ~socket ~tcp ~no_npn_cache
    ~window ~compact_bytes =
  if socket = "" && tcp = "" then begin
    prerr_endline "synthd: --shards needs --socket and/or --tcp";
    exit 124
  end;
  Service.serve
    { Service.shards;
      jobs;
      timeout;
      store;
      socket;
      tcp;
      no_npn_cache;
      window;
      compact_dead_bytes = compact_bytes }

let run_single ~jobs ~timeout ~store_path ~socket ~no_npn_cache ~heartbeat
    ~profile =
  let store =
    match store_path with "" -> None | path -> Some (load_store_verbose path)
  in
  Printf.eprintf
    "[synthd] v%s serving %s: %d job%s, default timeout %.1fs%s%s\n%!"
    Daemon.version
    (if socket = "" then "stdin" else socket)
    jobs
    (if jobs = 1 then "" else "s")
    timeout
    (if no_npn_cache then ", npn-cache off" else "")
    (if heartbeat > 0.0 then Printf.sprintf ", heartbeat every %gs" heartbeat
     else "");
  Daemon.serve
    { Daemon.jobs; timeout; store; socket; no_npn_cache;
      heartbeat_s = heartbeat; persist = Daemon.Rewrite };
  (match store with
   | Some s ->
     let st = Store.stats s in
     Printf.eprintf
       "[synthd] store: %d classes flushed to %s (%d flush%s, %d bytes)\n%!"
       st.Store.classes (Store.path s) st.Store.flushes
       (if st.Store.flushes = 1 then "" else "es")
       st.Store.flush_bytes
   | None -> ());
  if profile then
    Format.eprintf "[synthd] profile:@.%a@.%!" Stp_util.Profile.pp
      (Stp_util.Profile.snapshot ())

let run jobs timeout store_path socket tcp no_npn_cache profile heartbeat
    trace metrics sends shards window compact_bytes compact merge_out srcs =
  Cli.with_telemetry ~trace ~metrics @@ fun () ->
  Stp_util.Profile.set_enabled profile;
  (if tcp <> "" then
     try ignore (Wire.parse_tcp tcp)
     with Failure msg ->
       prerr_endline ("synthd: " ^ msg);
       exit 124);
  if compact then run_compact store_path
  else if merge_out <> "" then run_merge merge_out srcs
  else
    match sends with
    | _ :: _ ->
      if socket = "" && tcp = "" then begin
        prerr_endline "synthd: --send needs --socket or --tcp";
        exit 124
      end;
      run_client ~socket ~tcp sends
    | [] ->
      if shards = 0 && tcp <> "" then begin
        prerr_endline
          "synthd: --tcp is served by the sharded service; add --shards N";
        exit 124
      end;
      let jobs = Cli.resolve_jobs jobs in
      if shards > 0 then
        run_service ~shards ~jobs ~timeout ~store:store_path ~socket ~tcp
          ~no_npn_cache ~window ~compact_bytes
      else run_single ~jobs ~timeout ~store_path ~socket ~no_npn_cache
             ~heartbeat ~profile

let heartbeat_arg =
  let doc =
    "While idle, print a one-line status (uptime, request/batch counts, \
     store size) to stderr every $(docv) seconds (0 disables). \
     Single-process mode only."
  in
  Arg.(value & opt float 0.0 & info [ "heartbeat" ] ~docv:"SECONDS" ~doc)

let send_arg =
  let doc =
    "Act as a client: send this JSON request line (repeatable) to the \
     daemon at --socket or --tcp, print the responses, and exit."
  in
  Arg.(value & opt_all string [] & info [ "send" ] ~docv:"JSON" ~doc)

let shards_arg =
  let doc =
    "Run the sharded multiplexing service with $(docv) worker processes \
     (0, the default, runs the classic single-process daemon). Each \
     worker owns a disjoint NPN-class partition, its own domain pool \
     and its own store section file $(i,STORE.shardKofN); dead workers \
     are restarted and their in-flight requests re-dispatched."
  in
  Arg.(value & opt int 0 & info [ "shards" ] ~docv:"N" ~doc)

let window_arg =
  let doc =
    "Service mode: per-client backpressure window — stop reading a \
     client once it has $(docv) unanswered requests in flight."
  in
  Arg.(value & opt int 64 & info [ "window" ] ~docv:"N" ~doc)

let compact_bytes_arg =
  let doc =
    "Service mode: each worker compacts its store section online once \
     it carries at least $(docv) dead bytes (0 disables)."
  in
  Arg.(
    value & opt int (1 lsl 20) & info [ "compact-bytes" ] ~docv:"BYTES" ~doc)

let compact_arg =
  let doc =
    "Compact the --store file once (atomic rewrite dropping dead bytes: \
     superseded duplicates, corrupt frames, torn tails) and exit."
  in
  Arg.(value & flag & info [ "compact" ] ~doc)

let merge_out_arg =
  let doc =
    "Merge the store files given as positional arguments into $(docv) \
     (created if missing; on key collisions the record with fewer gates \
     wins), compact it, and exit — folds per-shard section files back \
     into one store."
  in
  Arg.(value & opt string "" & info [ "merge-out" ] ~docv:"OUT" ~doc)

let srcs_arg =
  let doc = "Source store files for --merge-out." in
  Arg.(value & pos_all string [] & info [] ~docv:"STORE" ~doc)

let cmd =
  let doc = "batch exact-synthesis daemon over the persistent NPN store" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Reads JSON-lines synthesis requests — one object per line, e.g. \
         {\"id\": 1, \"n\": 4, \"tt\": \"8ff8\", \"timeout\": 2.0} — and \
         answers each with the optimum 2-LUT chains, a cache replay when \
         the function's NPN class is already known, or a verified upper \
         bound when the per-request deadline expires. Buffered request \
         backlogs are fanned out over --jobs domains. SIGTERM/SIGINT \
         finish the current batch and flush the store.";
      `P
        "With --shards N the process becomes a sharded service: a \
         front-end multiplexer accepts any number of concurrent clients \
         on --socket and/or --tcp, routes each request to the worker \
         owning its canonical NPN class, keeps responses in per-client \
         request order, applies per-client backpressure (--window), \
         restarts crashed workers without losing accepted requests, and \
         answers {\"type\":\"stats\"} with per-shard queue depths and \
         the full telemetry snapshot." ]
  in
  Cmd.v
    (Cmd.info "synthd" ~doc ~man)
    Term.(
      const run $ Cli.jobs
      $ Cli.timeout ~doc:"Default per-request deadline in seconds." ()
      $ Cli.store $ Cli.socket $ Cli.tcp $ Cli.no_npn_cache $ Cli.profile
      $ heartbeat_arg $ Cli.trace $ Cli.metrics $ send_arg $ shards_arg
      $ window_arg $ compact_bytes_arg $ compact_arg $ merge_out_arg
      $ srcs_arg)

let () = exit (Cmd.eval cmd)
