(* Pass-pipeline netlist optimization over AIGER/BLIF/Verilog: NPN-cached
   exact cut rewriting and SAT sweeping, composed from a --passes spec. *)

open Cmdliner
module Ntk = Stp_network.Ntk
module Rewrite = Stp_network.Rewrite
module Sweep = Stp_network.Sweep
module Pass = Stp_network.Pass
module Report = Stp_harness.Report
module Cli = Stp_harness.Cli
module Store = Stp_store.Store

let read_network path =
  let sniff () =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (min 4 (in_channel_length ic)))
  in
  if Filename.check_suffix path ".aig" || Filename.check_suffix path ".aag"
  then Stp_network.Aiger.read_file path
  else if Filename.check_suffix path ".blif" then
    Stp_network.Blif.read_file path
  else if Filename.check_suffix path ".v" then
    Stp_network.Verilog.read_file path
  else
    match sniff () with
    | "aig " | "aag " -> Stp_network.Aiger.read_file path
    | _ -> Stp_network.Blif.read_file path

let write_network path ntk =
  if Filename.check_suffix path ".blif" then
    Stp_network.Blif.write_file path ntk
  else Stp_network.Aiger.write_file path ntk

let pass_json (s : Pass.stats) =
  let open Report in
  Obj
    ([ ("pass", String s.pass);
       ("ands_before", Int s.ands_before);
       ("ands_after", Int s.ands_after);
       ("gain", Int (Pass.gain s));
       ("depth_before", Int s.depth_before);
       ("depth_after", Int s.depth_after);
       ("verified", Bool s.verified);
       ("verify_method", String s.verify_method);
       ("elapsed_s", Float s.elapsed_s) ]
    @ List.map (fun (k, v) -> (k, Int v)) s.detail)

let row_json path ntk (rows : Pass.stats list) =
  let open Report in
  let first = List.hd rows and last = List.nth rows (List.length rows - 1) in
  Obj
    [ ("file", String (Filename.basename path));
      ("pis", Int (Ntk.num_pis ntk));
      ("pos", Int (Ntk.num_pos ntk));
      ("ands_before", Int first.Pass.ands_before);
      ("ands_after", Int last.Pass.ands_after);
      ("gain", Int (first.Pass.ands_before - last.Pass.ands_after));
      ("depth_before", Int first.Pass.depth_before);
      ("depth_after", Int last.Pass.depth_after);
      ("verified", Bool (List.for_all (fun r -> r.Pass.verified) rows));
      ("elapsed_s",
       Float (List.fold_left (fun a r -> a +. r.Pass.elapsed_s) 0.0 rows));
      ("passes", List (List.map pass_json rows)) ]

let run files passes_spec lut_size cut_limit timeout jobs full_basis
    max_chains sweep_words sweep_timeout sweep_conflicts sweep_rounds
    sweep_cex seed json_path out_path store_path =
  if files = [] then begin
    prerr_endline "rewrite: no input files";
    exit 124
  end;
  if out_path <> "" && List.length files > 1 then begin
    prerr_endline "rewrite: --out needs exactly one input file";
    exit 124
  end;
  let jobs = Cli.resolve_jobs jobs in
  let options =
    { Rewrite.cut_size = lut_size;
      cut_limit;
      timeout;
      jobs;
      max_chains;
      basis = (if full_basis then None else Some Rewrite.and_basis) }
  in
  let sweep_options =
    { Sweep.sim_words = sweep_words;
      max_rounds = sweep_rounds;
      conflict_budget = sweep_conflicts;
      timeout = sweep_timeout;
      max_cex_per_round = sweep_cex;
      seed }
  in
  (* One cache for the whole batch: classes solved on one benchmark are
     replays on the next. Chains live in the selected gate basis, so the
     persistent store keys them under a basis-distinct section — an
     AND-basis chain set must never answer a full-basis run. *)
  let section = if full_basis then "STP" else "STP+and" in
  let store =
    match store_path with
    | "" -> None
    | path ->
      let s = Store.load ~path in
      let st = Store.stats s in
      Printf.eprintf "[rewrite] store %s: %d classes in %d sections%s\n%!" path
        st.Store.classes st.Store.sections
        (if st.Store.skipped = 0 then ""
         else Printf.sprintf " (%d corrupt records skipped)" st.Store.skipped);
      Some s
  in
  let cache = Stp_synth.Npn_cache.create () in
  (match store with
   | Some s ->
     let st = Store.seed s ~section cache in
     if st.Store.seeded > 0 then
       Printf.eprintf "[rewrite] store: seeded %d %s classes\n%!" st.Store.seeded
         section
   | None -> ());
  Pass.register (Rewrite.pass ~options ~cache ());
  Pass.register (Sweep.pass ~options:sweep_options ());
  let pipeline =
    match Pass.parse passes_spec with
    | Ok [] ->
      prerr_endline "rewrite: --passes is empty";
      exit 124
    | Ok ps -> ps
    | Error msg ->
      Printf.eprintf "rewrite: %s\n" msg;
      exit 124
  in
  Printf.eprintf
    "[rewrite] passes %s; lut-size %d, cut-limit %d, timeout %.1fs/class, %d \
     job%s, basis %s\n%!"
    passes_spec lut_size cut_limit timeout jobs
    (if jobs = 1 then "" else "s")
    (if full_basis then "full" else "and");
  let all_ok = ref true in
  let total_gain = ref 0 in
  let rows =
    List.map
      (fun path ->
        let ntk = read_network path in
        Printf.eprintf "[rewrite] %s: %d PIs, %d POs, %d ANDs, depth %d\n%!"
          (Filename.basename path) (Ntk.num_pis ntk) (Ntk.num_pos ntk)
          (Ntk.count_live ntk) (Ntk.depth ntk);
        let optimized, stats = Pass.run_pipeline pipeline ntk in
        List.iter
          (fun (s : Pass.stats) ->
            let pct =
              if s.ands_before = 0 then 0.0
              else
                100.0 *. float_of_int (Pass.gain s)
                /. float_of_int s.ands_before
            in
            Printf.eprintf
              "[rewrite]   %-8s ANDs %d -> %d (saved %d, %.1f%%), depth %d \
               -> %d, %s (%s), %.2fs%s\n%!"
              s.pass s.ands_before s.ands_after (Pass.gain s) pct
              s.depth_before s.depth_after
              (if s.verified then "verified" else "VERIFICATION FAILED")
              s.verify_method s.elapsed_s
              (match s.detail with
               | [] -> ""
               | d ->
                 "  ["
                 ^ String.concat ", "
                     (List.map (fun (k, v) -> Printf.sprintf "%s %d" k v) d)
                 ^ "]"))
          stats;
        if List.exists (fun (s : Pass.stats) -> not s.verified) stats then
          all_ok := false;
        let first = List.hd stats
        and last = List.nth stats (List.length stats - 1) in
        total_gain :=
          !total_gain + (first.Pass.ands_before - last.Pass.ands_after);
        if out_path <> "" && !all_ok then begin
          write_network out_path optimized;
          Printf.eprintf "[rewrite]   wrote %s\n%!" out_path
        end;
        row_json path ntk stats)
      files
  in
  (match store with
   | None -> ()
   | Some s ->
     let ab = Store.absorb s ~section cache in
     Store.flush s;
     Printf.eprintf "[rewrite] store: flushed %d classes (%d new) to %s\n%!"
       (Store.stats s).Store.classes ab.Store.absorbed (Store.path s));
  Printf.eprintf "[rewrite] total: %d gate%s saved over %d benchmark%s\n%!"
    !total_gain
    (if !total_gain = 1 then "" else "s")
    (List.length files)
    (if List.length files = 1 then "" else "s");
  (match json_path with
  | "" -> ()
  | path ->
    let open Report in
    let doc =
      Obj
        [ ("source", String "bin/rewrite");
          ("passes", String passes_spec);
          ("lut_size", Int lut_size);
          ("cut_limit", Int cut_limit);
          ("timeout_s", Float timeout);
          ("jobs", Int jobs);
          ("basis", String (if full_basis then "full" else "and"));
          ("total_gain", Int !total_gain);
          ("rows", List rows) ]
    in
    let oc = open_out path in
    output_string oc (to_string doc);
    output_string oc "\n";
    close_out oc;
    Printf.eprintf "[rewrite] wrote %s\n%!" path);
  if not !all_ok then exit 2

let files_arg =
  let doc = "Benchmark netlists (AIGER .aig/.aag, BLIF, structural Verilog)." in
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc)

let passes_arg =
  let doc =
    "Comma-separated pass pipeline, run left to right. Available: \
     $(b,rewrite) (NPN-cached exact cut rewriting) and $(b,sweep) \
     (SAT sweeping). E.g. $(b,--passes sweep,rewrite)."
  in
  Arg.(value & opt string "rewrite" & info [ "passes" ] ~docv:"SPEC" ~doc)

let lut_size_arg =
  let doc = "Cut size k: rewrite up to k-input subfunctions (2-6)." in
  Arg.(value & opt int 4 & info [ "k"; "lut-size" ] ~docv:"K" ~doc)

let cut_limit_arg =
  let doc = "Priority cuts kept per node." in
  Arg.(value & opt int 8 & info [ "cut-limit" ] ~docv:"N" ~doc)

let full_basis_arg =
  let doc =
    "Synthesize replacement chains over all ten 2-input gates instead of \
     the AND-class basis; XOR-like steps then cost three AND nodes each."
  in
  Arg.(value & flag & info [ "full-basis" ] ~doc)

let max_chains_arg =
  let doc = "Optimum chains tried per cut (the engine returns all of them)." in
  Arg.(value & opt int 8 & info [ "max-chains" ] ~docv:"N" ~doc)

let sweep_words_arg =
  let doc = "Sweep: initial random simulation word batches (64 patterns each)." in
  Arg.(value & opt int Sweep.default_options.Sweep.sim_words
       & info [ "sweep-words" ] ~docv:"N" ~doc)

let sweep_timeout_arg =
  let doc = "Sweep: whole-pass wall-clock budget in seconds." in
  Arg.(value & opt float Sweep.default_options.Sweep.timeout
       & info [ "sweep-timeout" ] ~docv:"SECONDS" ~doc)

let sweep_conflicts_arg =
  let doc = "Sweep: CDCL conflict budget per proof attempt (0 = unlimited)." in
  Arg.(value & opt int Sweep.default_options.Sweep.conflict_budget
       & info [ "sweep-conflicts" ] ~docv:"N" ~doc)

let sweep_rounds_arg =
  let doc = "Sweep: refinement-round cap." in
  Arg.(value & opt int Sweep.default_options.Sweep.max_rounds
       & info [ "sweep-rounds" ] ~docv:"N" ~doc)

let sweep_cex_arg =
  let doc = "Sweep: counterexamples per round before re-simulating." in
  Arg.(value & opt int Sweep.default_options.Sweep.max_cex_per_round
       & info [ "sweep-cex" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "PRNG seed for sweep simulation patterns." in
  Arg.(value & opt int Sweep.default_options.Sweep.seed
       & info [ "seed" ] ~docv:"N" ~doc)

let out_arg =
  let doc =
    "Write the optimized network here (.aig binary AIGER, .aag ASCII, \
     .blif BLIF); requires a single input file."
  in
  Arg.(value & opt string "" & info [ "o"; "out" ] ~docv:"PATH" ~doc)

let cmd =
  let doc = "optimize netlists through a pipeline of verified passes" in
  Cmd.v
    (Cmd.info "rewrite" ~doc)
    Term.(
      const run $ files_arg $ passes_arg $ lut_size_arg $ cut_limit_arg
      $ Cli.timeout ~doc:"Per-NPN-class synthesis timeout in seconds." ()
      $ Cli.jobs $ full_basis_arg $ max_chains_arg $ sweep_words_arg
      $ sweep_timeout_arg $ sweep_conflicts_arg $ sweep_rounds_arg
      $ sweep_cex_arg $ seed_arg $ Cli.json () $ out_arg $ Cli.store)

let () = exit (Cmd.eval cmd)
