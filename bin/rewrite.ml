(* NPN-cached exact cut rewriting over AIGER/BLIF/Verilog netlists. *)

open Cmdliner
module Ntk = Stp_network.Ntk
module Rewrite = Stp_network.Rewrite
module Report = Stp_harness.Report
module Cli = Stp_harness.Cli
module Store = Stp_store.Store

let read_network path =
  let sniff () =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (min 4 (in_channel_length ic)))
  in
  if Filename.check_suffix path ".aig" || Filename.check_suffix path ".aag"
  then Stp_network.Aiger.read_file path
  else if Filename.check_suffix path ".blif" then
    Stp_network.Blif.read_file path
  else if Filename.check_suffix path ".v" then
    Stp_network.Verilog.read_file path
  else
    match sniff () with
    | "aig " | "aag " -> Stp_network.Aiger.read_file path
    | _ -> Stp_network.Blif.read_file path

let write_network path ntk =
  if Filename.check_suffix path ".blif" then
    Stp_network.Blif.write_file path ntk
  else Stp_network.Aiger.write_file path ntk

let row_json path ntk (r : Rewrite.report) =
  let open Report in
  Obj
    [ ("file", String (Filename.basename path));
      ("pis", Int (Ntk.num_pis ntk));
      ("pos", Int (Ntk.num_pos ntk));
      ("ands_before", Int r.ands_before);
      ("ands_after", Int r.ands_after);
      ("gain", Int (Rewrite.gain r));
      ("depth_before", Int r.depth_before);
      ("depth_after", Int r.depth_after);
      ("applied", Int r.applied);
      ("candidates", Int r.candidates);
      ("classes", Int r.classes);
      ("cache_hits", Int r.cache.Stp_synth.Npn_cache.hits);
      ("cache_misses", Int r.cache.Stp_synth.Npn_cache.misses);
      ("verified", Bool r.verified);
      ("verify_method", String r.verify_method);
      ("elapsed_s", Float r.elapsed) ]

let run files lut_size cut_limit timeout jobs full_basis max_chains json_path
    out_path store_path =
  if files = [] then begin
    prerr_endline "rewrite: no input files";
    exit 124
  end;
  if out_path <> "" && List.length files > 1 then begin
    prerr_endline "rewrite: --out needs exactly one input file";
    exit 124
  end;
  let jobs = Cli.resolve_jobs jobs in
  Printf.eprintf
    "[rewrite] lut-size %d, cut-limit %d, timeout %.1fs/class, %d job%s, \
     basis %s\n%!"
    lut_size cut_limit timeout jobs
    (if jobs = 1 then "" else "s")
    (if full_basis then "full" else "and");
  let options =
    { Rewrite.cut_size = lut_size;
      cut_limit;
      timeout;
      jobs;
      max_chains;
      basis = (if full_basis then None else Some Rewrite.and_basis) }
  in
  (* One cache for the whole batch: classes solved on one benchmark are
     replays on the next. Chains live in the selected gate basis, so the
     persistent store keys them under a basis-distinct section — an
     AND-basis chain set must never answer a full-basis run. *)
  let section = if full_basis then "STP" else "STP+and" in
  let store =
    match store_path with
    | "" -> None
    | path ->
      let s = Store.load ~path in
      let st = Store.stats s in
      Printf.eprintf "[rewrite] store %s: %d classes in %d sections%s\n%!" path
        st.Store.classes st.Store.sections
        (if st.Store.skipped = 0 then ""
         else Printf.sprintf " (%d corrupt records skipped)" st.Store.skipped);
      Some s
  in
  let cache = Stp_synth.Npn_cache.create () in
  (match store with
   | Some s ->
     let st = Store.seed s ~section cache in
     if st.Store.seeded > 0 then
       Printf.eprintf "[rewrite] store: seeded %d %s classes\n%!" st.Store.seeded
         section
   | None -> ());
  let all_ok = ref true in
  let total_gain = ref 0 in
  let rows =
    List.map
      (fun path ->
        let ntk = read_network path in
        Printf.eprintf "[rewrite] %s: %d PIs, %d POs, %d ANDs, depth %d\n%!"
          (Filename.basename path) (Ntk.num_pis ntk) (Ntk.num_pos ntk)
          (Ntk.count_live ntk) (Ntk.depth ntk);
        let optimized, r = Rewrite.run ~options ~cache ntk in
        let pct =
          if r.Rewrite.ands_before = 0 then 0.0
          else
            100.0
            *. float_of_int (Rewrite.gain r)
            /. float_of_int r.Rewrite.ands_before
        in
        Printf.eprintf
          "[rewrite]   %d candidates -> %d classes, cache %d/%d hits\n%!"
          r.Rewrite.candidates r.Rewrite.classes
          r.Rewrite.cache.Stp_synth.Npn_cache.hits
          (r.Rewrite.cache.Stp_synth.Npn_cache.hits
          + r.Rewrite.cache.Stp_synth.Npn_cache.misses);
        Printf.eprintf
          "[rewrite]   ANDs %d -> %d (saved %d, %.1f%%), depth %d -> %d, %d \
           rewrites, %s (%s), %.2fs\n%!"
          r.Rewrite.ands_before r.Rewrite.ands_after (Rewrite.gain r) pct
          r.Rewrite.depth_before r.Rewrite.depth_after r.Rewrite.applied
          (if r.Rewrite.verified then "verified" else "VERIFICATION FAILED")
          r.Rewrite.verify_method r.Rewrite.elapsed;
        if not r.Rewrite.verified then all_ok := false;
        total_gain := !total_gain + Rewrite.gain r;
        if out_path <> "" && r.Rewrite.verified then begin
          write_network out_path optimized;
          Printf.eprintf "[rewrite]   wrote %s\n%!" out_path
        end;
        row_json path ntk r)
      files
  in
  (match store with
   | None -> ()
   | Some s ->
     let ab = Store.absorb s ~section cache in
     Store.flush s;
     Printf.eprintf "[rewrite] store: flushed %d classes (%d new) to %s\n%!"
       (Store.stats s).Store.classes ab.Store.absorbed (Store.path s));
  Printf.eprintf "[rewrite] total: %d gate%s saved over %d benchmark%s\n%!"
    !total_gain
    (if !total_gain = 1 then "" else "s")
    (List.length files)
    (if List.length files = 1 then "" else "s");
  (match json_path with
  | "" -> ()
  | path ->
    let open Report in
    let doc =
      Obj
        [ ("source", String "bin/rewrite");
          ("lut_size", Int lut_size);
          ("cut_limit", Int cut_limit);
          ("timeout_s", Float timeout);
          ("jobs", Int jobs);
          ("basis", String (if full_basis then "full" else "and"));
          ("total_gain", Int !total_gain);
          ("rows", List rows) ]
    in
    let oc = open_out path in
    output_string oc (to_string doc);
    output_string oc "\n";
    close_out oc;
    Printf.eprintf "[rewrite] wrote %s\n%!" path);
  if not !all_ok then exit 2

let files_arg =
  let doc = "Benchmark netlists (AIGER .aig/.aag, BLIF, structural Verilog)." in
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc)

let lut_size_arg =
  let doc = "Cut size k: rewrite up to k-input subfunctions (2-6)." in
  Arg.(value & opt int 4 & info [ "k"; "lut-size" ] ~docv:"K" ~doc)

let cut_limit_arg =
  let doc = "Priority cuts kept per node." in
  Arg.(value & opt int 8 & info [ "cut-limit" ] ~docv:"N" ~doc)

let full_basis_arg =
  let doc =
    "Synthesize replacement chains over all ten 2-input gates instead of \
     the AND-class basis; XOR-like steps then cost three AND nodes each."
  in
  Arg.(value & flag & info [ "full-basis" ] ~doc)

let max_chains_arg =
  let doc = "Optimum chains tried per cut (the engine returns all of them)." in
  Arg.(value & opt int 8 & info [ "max-chains" ] ~docv:"N" ~doc)

let out_arg =
  let doc =
    "Write the optimized network here (.aig binary AIGER, .aag ASCII, \
     .blif BLIF); requires a single input file."
  in
  Arg.(value & opt string "" & info [ "o"; "out" ] ~docv:"PATH" ~doc)

let cmd =
  let doc = "optimize netlists by NPN-cached exact cut rewriting" in
  Cmd.v
    (Cmd.info "rewrite" ~doc)
    Term.(
      const run $ files_arg $ lut_size_arg $ cut_limit_arg
      $ Cli.timeout ~doc:"Per-NPN-class synthesis timeout in seconds." ()
      $ Cli.jobs $ full_basis_arg $ max_chains_arg
      $ Cli.json () $ out_arg $ Cli.store)

let () = exit (Cmd.eval cmd)
