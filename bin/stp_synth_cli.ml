(* Command-line exact synthesis: give a truth table in hex, get every
   optimum Boolean chain. *)

open Cmdliner

let parse_basis = function
  | "" -> None
  | "aig" -> Some [ 1; 2; 4; 7; 8; 11; 13; 14 ]
  | "xor" -> Some [ 6; 9 ]
  | "xag" -> None (* the full ten-gate library *)
  | spec ->
    Some
      (List.map
         (fun name ->
           try Stp_chain.Gate.of_name name
           with Not_found ->
             Printf.eprintf "error: unknown gate %s\n" name;
             exit 2)
         (String.split_on_char ',' spec))

let synthesize_cmd hex n engine timeout all verbose basis max_depth output =
  (* "@file.pla" reads the function from a PLA file instead of hex. *)
  let f =
    try
      if String.length hex > 0 && hex.[0] = '@' then begin
        let path = String.sub hex 1 (String.length hex - 1) in
        let ic = open_in path in
        let len = in_channel_length ic in
        let text = really_input_string ic len in
        close_in ic;
        let tables = Stp_tt.Pla.parse text in
        if output < 0 || output >= Array.length tables then begin
          Printf.eprintf "error: PLA has %d outputs\n" (Array.length tables);
          exit 2
        end;
        tables.(output)
      end
      else
        match n with
        | Some n -> Stp_tt.Tt.of_hex ~n hex
        | None ->
          Printf.eprintf "error: -n is required with a hex table\n";
          exit 2
    with
    | Invalid_argument msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2
    | Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2
  in
  let options =
    { (Stp_synth.Spec.with_timeout timeout) with
      Stp_synth.Spec.solution_cap = (if all then 10_000 else 1);
      basis = parse_basis basis;
      max_depth = (if max_depth <= 0 then None else Some max_depth) }
  in
  let result =
    match engine with
    | "stp" -> Stp_synth.Stp_exact.synthesize ~options f
    | "bms" -> Stp_synth.Baselines.bms ~options f
    | "fen" -> Stp_synth.Baselines.fen ~options f
    | "abc" -> Stp_synth.Baselines.abc ~options f
    | other ->
      Printf.eprintf "error: unknown engine %s (stp|bms|fen|abc)\n" other;
      exit 2
  in
  match result.Stp_synth.Spec.status with
  | Stp_synth.Spec.Timeout ->
    Printf.printf "timeout after %.2fs\n" result.Stp_synth.Spec.elapsed;
    exit 1
  | Stp_synth.Spec.Solved ->
    let gates = Option.get result.Stp_synth.Spec.gates in
    let chains = result.Stp_synth.Spec.chains in
    Printf.printf "optimum: %d gates; %d chain(s); %.3fs\n" gates
      (List.length chains) result.Stp_synth.Spec.elapsed;
    List.iteri
      (fun i c ->
        if verbose then Format.printf "--- solution %d ---@.%a@." (i + 1)
            Stp_chain.Chain.pp c
        else Format.printf "%a@." Stp_chain.Chain.pp_compact c)
      chains

let hex_arg =
  let doc =
    "Truth table in hexadecimal (most significant bits first), or \
     @FILE.pla to read a PLA file."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"HEX" ~doc)

let n_arg =
  let doc = "Number of input variables (required for hex tables)." in
  Arg.(value & opt (some int) None & info [ "n"; "inputs" ] ~docv:"N" ~doc)

let engine_arg =
  let doc = "Engine: stp (all solutions), bms, fen or abc." in
  Arg.(value & opt string "stp" & info [ "e"; "engine" ] ~docv:"ENGINE" ~doc)

let timeout_arg =
  let doc = "Per-instance timeout in seconds." in
  Arg.(value & opt float 60.0 & info [ "t"; "timeout" ] ~docv:"SECONDS" ~doc)

let all_arg =
  let doc = "Collect all optimum chains (STP engine only)." in
  Arg.(value & flag & info [ "a"; "all" ] ~doc)

let verbose_arg =
  let doc = "Print chains gate by gate instead of one-line form." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let basis_arg =
  let doc =
    "Gate library: $(b,aig) (AND class), $(b,xor) (XOR/XNOR), or a \
     comma-separated list of gate names (AND,OR,XOR,NAND,...)."
  in
  Arg.(value & opt string "" & info [ "b"; "basis" ] ~docv:"BASIS" ~doc)

let depth_arg =
  let doc = "Maximum logic depth (0 = unbounded)." in
  Arg.(value & opt int 0 & info [ "d"; "max-depth" ] ~docv:"LEVELS" ~doc)

let output_arg =
  let doc = "Which output column of a PLA file to synthesise." in
  Arg.(value & opt int 0 & info [ "o"; "output" ] ~docv:"K" ~doc)

let cmd =
  let doc = "exact synthesis via the semi-tensor-product circuit solver" in
  Cmd.v
    (Cmd.info "stp_synth" ~doc)
    Term.(
      const synthesize_cmd $ hex_arg $ n_arg $ engine_arg $ timeout_arg
      $ all_arg $ verbose_arg $ basis_arg $ depth_arg $ output_arg)

let () = exit (Cmd.eval cmd)
