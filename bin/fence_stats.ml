(* Fence and DAG-shape statistics: the data behind Figs. 2 and 3. *)

let () =
  Format.printf "Fence families F_k (Fig. 2):@.";
  Format.printf "%4s %10s %10s@." "k" "fences" "pruned";
  for k = 1 to 8 do
    let all = Stp_topology.Fence.generate k in
    let pruned = Stp_topology.Fence.prune all in
    Format.printf "%4d %10d %10d@." k (List.length all) (List.length pruned)
  done;
  Format.printf "@.Pruned fences of F_3 (Fig. 2b):@.";
  List.iter
    (fun f -> Format.printf "  %a@." Stp_topology.Fence.pp f)
    (Stp_topology.Fence.generate_pruned 3);
  Format.printf "@.Valid DAG shapes of F_3 (Fig. 3):@.";
  List.iter
    (fun s -> Format.printf "  %a@." Stp_topology.Dag.pp s)
    (Stp_topology.Dag.enumerate 3);
  Format.printf "@.DAG shapes per gate count:@.";
  Format.printf "%4s %10s %10s@." "k" "shapes" "trees";
  for k = 1 to 7 do
    let shapes = Stp_topology.Dag.enumerate k in
    let trees = List.filter (fun s -> s.Stp_topology.Dag.is_tree) shapes in
    Format.printf "%4d %10d %10d@." k (List.length shapes) (List.length trees)
  done
