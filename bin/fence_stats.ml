(* Fence and DAG-shape statistics: the data behind Figs. 2 and 3. *)

open Cmdliner
module Trace = Stp_telemetry.Trace

let max_fence_k = 8

let max_dag_k = 7

(* Per-row elapsed seconds come from the monotonic [Profile.now_ns]
   clock — the same source every other timer of the repo reads. *)
let timed name k f =
  Trace.span name ~args:[ ("k", string_of_int k) ] @@ fun () ->
  let t0 = Stp_util.Profile.now_ns () in
  let v = f () in
  (v, float_of_int (Stp_util.Profile.now_ns () - t0) *. 1e-9)

let fence_rows () =
  List.init max_fence_k (fun i ->
      let k = i + 1 in
      let (all, pruned), elapsed =
        timed "fence.generate" k (fun () ->
            let all = Stp_topology.Fence.generate k in
            (all, Stp_topology.Fence.prune all))
      in
      (k, List.length all, List.length pruned, elapsed))

let dag_rows () =
  List.init max_dag_k (fun i ->
      let k = i + 1 in
      let (shapes, trees), elapsed =
        timed "dag.enumerate" k (fun () ->
            let shapes = Stp_topology.Dag.enumerate k in
            ( shapes,
              List.filter (fun s -> s.Stp_topology.Dag.is_tree) shapes ))
      in
      (k, List.length shapes, List.length trees, elapsed))

let print_text () =
  Format.printf "Fence families F_k (Fig. 2):@.";
  Format.printf "%4s %10s %10s %10s@." "k" "fences" "pruned" "secs";
  List.iter
    (fun (k, fences, pruned, elapsed) ->
      Format.printf "%4d %10d %10d %10.4f@." k fences pruned elapsed)
    (fence_rows ());
  Format.printf "@.Pruned fences of F_3 (Fig. 2b):@.";
  List.iter
    (fun f -> Format.printf "  %a@." Stp_topology.Fence.pp f)
    (Stp_topology.Fence.generate_pruned 3);
  Format.printf "@.Valid DAG shapes of F_3 (Fig. 3):@.";
  List.iter
    (fun s -> Format.printf "  %a@." Stp_topology.Dag.pp s)
    (Stp_topology.Dag.enumerate 3);
  Format.printf "@.DAG shapes per gate count:@.";
  Format.printf "%4s %10s %10s %10s@." "k" "shapes" "trees" "secs";
  List.iter
    (fun (k, shapes, trees, elapsed) ->
      Format.printf "%4d %10d %10d %10.4f@." k shapes trees elapsed)
    (dag_rows ())

let write_json path =
  let open Stp_harness.Report in
  let doc =
    Obj
      [ ("source", String "bin/fence_stats");
        ( "fences",
          List
            (List.map
               (fun (k, fences, pruned, elapsed) ->
                 Obj
                   [ ("k", Int k);
                     ("fences", Int fences);
                     ("pruned", Int pruned);
                     ("elapsed_s", Float elapsed) ])
               (fence_rows ())) );
        ( "dag_shapes",
          List
            (List.map
               (fun (k, shapes, trees, elapsed) ->
                 Obj
                   [ ("k", Int k);
                     ("shapes", Int shapes);
                     ("trees", Int trees);
                     ("elapsed_s", Float elapsed) ])
               (dag_rows ())) ) ]
  in
  let oc = open_out path in
  output_string oc (to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.eprintf "[fence_stats] wrote %s\n%!" path

let run json_path trace metrics =
  Stp_harness.Cli.with_telemetry ~trace ~metrics @@ fun () ->
  print_text ();
  match json_path with "" -> () | path -> write_json path

let json_arg =
  let doc = "Also write the fence and DAG-shape counts to this JSON file." in
  Arg.(value & opt string "" & info [ "json" ] ~docv:"PATH" ~doc)

let cmd =
  let doc = "fence and DAG-shape statistics behind Figs. 2 and 3" in
  Cmd.v (Cmd.info "fence_stats" ~doc)
    Term.(
      const run $ json_arg $ Stp_harness.Cli.trace $ Stp_harness.Cli.metrics)

let () = exit (Cmd.eval cmd)
