(* AllSAT on propositional formulas via STP canonical forms — the
   solving style of the paper's Section II-A, as a command-line tool. *)

open Cmdliner

let run text n trace_flag count_only =
  let expr =
    try Stp_matrix.Parse.formula text
    with Invalid_argument msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  let n =
    match n with
    | Some n -> n
    | None -> Stp_matrix.Expr.max_var expr + 1
  in
  if n <= Stp_matrix.Expr.max_var expr then begin
    Printf.eprintf "error: formula uses more than %d variables\n" n;
    exit 2
  end;
  let m = Stp_matrix.Canonical.of_expr ~n expr in
  Format.printf "formula: %a@." Stp_matrix.Expr.pp expr;
  Format.printf "canonical form:@.%a@." Stp_matrix.Matrix.pp m;
  if trace_flag then
    Format.printf "@.search tree:@.%a@." Stp_matrix.Stp_sat.pp_tree
      (Stp_matrix.Stp_sat.trace m);
  let total = Stp_matrix.Stp_sat.count m in
  Format.printf "@.%d satisfying assignment(s)@." total;
  if not count_only then
    List.iter
      (fun s ->
        Format.printf "  ";
        Array.iteri
          (fun i v ->
            if i > 0 then Format.printf " ";
            Format.printf "x%d=%d" (i + 1) (if v then 1 else 0))
          s;
        Format.printf "@.")
      (Stp_matrix.Stp_sat.all_solutions m);
  if total = 0 then exit 1

let formula_arg =
  let doc =
    "Formula over x1..xn (or letters a, b, c, ...); operators ! & ^ | -> \
     <-> and parentheses, e.g. '(a <-> !b) & (b <-> !c)'."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FORMULA" ~doc)

let n_arg =
  let doc = "Number of variables (default: highest variable used)." in
  Arg.(value & opt (some int) None & info [ "n" ] ~docv:"N" ~doc)

let trace_arg =
  let doc = "Print the Fig. 1-style descent tree." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let count_arg =
  let doc = "Print only the model count." in
  Arg.(value & flag & info [ "count" ] ~doc)

let cmd =
  let doc = "AllSAT via STP canonical forms" in
  Cmd.v (Cmd.info "stp_allsat" ~doc)
    Term.(const run $ formula_arg $ n_arg $ trace_arg $ count_arg)

let () = exit (Cmd.eval cmd)
