(* Cost-based selection among all optimum chains — the paper's argument
   for producing solutions as generic 2-LUTs: "different costs can be
   considered when selecting the optimal circuit".

   We synthesise the 3-input majority function, enumerate all its 4-gate
   optimum chains, and pick winners under several technology costs.

   Run with:  dune exec examples/cost_selection.exe *)

module Tt = Stp_tt.Tt
module Chain = Stp_chain.Chain
module Cost = Stp_chain.Cost

let () =
  let maj = Tt.of_hex ~n:3 "e8" in
  Format.printf "target: MAJ3 = %a@.@." Tt.pp maj;
  let result = Stp_synth.Stp_exact.synthesize maj in
  match result.Stp_synth.Spec.status with
  | Stp_synth.Spec.Timeout -> Format.printf "unexpected timeout@."
  | Stp_synth.Spec.Solved ->
    let chains = result.Stp_synth.Spec.chains in
    Format.printf "found %d optimum chains of %d gates@.@."
      (List.length chains)
      (Option.get result.Stp_synth.Spec.gates);
    let describe name cost =
      let best = Cost.select_min cost chains in
      Format.printf "%-22s -> cost %2d:  %a@." name (cost best)
        Chain.pp_compact best
    in
    describe "minimum depth" Cost.depth;
    describe "fewest XOR/XNOR gates" Cost.xor_count;
    describe "fewest inversions" Cost.negation_count;
    describe "CMOS-like area" Cost.area_like;
    (* A custom cost: NAND/NOR-only technology (other gates forbidden). *)
    let nand_nor_only =
      Cost.gate_weighted
        (Array.init 16 (fun g -> if g = 7 || g = 1 then 1 else 1000))
    in
    describe "NAND/NOR technology" nand_nor_only;
    Format.printf
      "@.All candidates ranked by area:@.";
    List.iteri
      (fun i (cost, c) ->
        if i < 5 then Format.printf "  area %2d:  %a@." cost Chain.pp_compact c)
      (Cost.rank Cost.area_like chains)
