(* DSD structure of the benchmark workloads: generate FDSD and PDSD
   functions, classify them, and synthesise one of each.

   Run with:  dune exec examples/dsd_playground.exe *)

module Tt = Stp_tt.Tt
module Dsd = Stp_tt.Dsd

let kind_name = function
  | Dsd.Constant -> "constant"
  | Dsd.Literal -> "literal"
  | Dsd.Full -> "fully DSD"
  | Dsd.Partial -> "partially DSD"
  | Dsd.Prime -> "prime"

let () =
  Format.printf "prime 3-input cores available to the PDSD generator: %d@.@."
    (List.length Stp_workloads.Dsd_gen.prime_cores);

  let show name f =
    Format.printf "%s: %a  [%s, support %d]@." name Tt.pp f
      (kind_name (Dsd.kind f))
      (Tt.support_size f)
  in
  let fd = Stp_workloads.Dsd_gen.fdsd ~n:6 ~seed:7 in
  let pd = Stp_workloads.Dsd_gen.pdsd ~n:6 ~seed:7 in
  show "FDSD6 sample" fd;
  show "PDSD6 sample" pd;

  Format.printf "@.synthesising both (STP engine):@.";
  let options = Stp_synth.Spec.with_timeout 30.0 in
  List.iter
    (fun (name, f) ->
      match Stp_synth.Stp_exact.synthesize ~options f with
      | { Stp_synth.Spec.status = Stp_synth.Spec.Solved;
          gates = Some g; chains; elapsed; _ } ->
        Format.printf "%s: %d gates, %d solutions, %.3fs@." name g
          (List.length chains) elapsed;
        Format.printf "  e.g. %a@." Stp_chain.Chain.pp_compact (List.hd chains)
      | _ -> Format.printf "%s: timeout@." name)
    [ ("FDSD6", fd); ("PDSD6", pd) ];

  (* A fully-DSD function decomposes greedily along its top splits. *)
  Format.printf "@.top disjoint splits of the FDSD sample:@.";
  List.iter
    (fun (a, b) -> Format.printf "  A = 0x%02x, B = 0x%02x@." a b)
    (Dsd.top_splits fd)
