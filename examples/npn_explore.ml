(* Explore the NPN4 collection: class sizes, optimum gate counts, and the
   all-solutions counts that Table I's "number" column averages.

   Run with:  dune exec examples/npn_explore.exe  (takes ~a minute) *)

module Tt = Stp_tt.Tt

let () =
  let classes = Stp_workloads.Npn4.all () in
  Format.printf "4-input NPN classes: %d@.@." (List.length classes);

  (* Synthesise a slice of the collection and histogram the optima. *)
  let sample =
    List.filteri (fun i _ -> i mod 10 = 0) (Stp_workloads.Npn4.synthesizable ())
  in
  Format.printf "synthesising %d sampled classes (timeout 5s each)...@.@."
    (List.length sample);
  let histogram = Hashtbl.create 8 in
  let timeouts = ref 0 in
  let options = Stp_synth.Spec.with_timeout 5.0 in
  List.iter
    (fun f ->
      match Stp_synth.Stp_exact.synthesize ~options f with
      | { Stp_synth.Spec.status = Stp_synth.Spec.Solved; gates = Some g; chains; _ } ->
        let count, sols =
          Option.value ~default:(0, 0) (Hashtbl.find_opt histogram g)
        in
        Hashtbl.replace histogram g (count + 1, sols + List.length chains)
      | _ -> incr timeouts)
    sample;
  Format.printf "%8s %8s %14s@." "gates" "classes" "avg solutions";
  List.iter
    (fun (g, (count, sols)) ->
      Format.printf "%8d %8d %14.1f@." g count
        (float_of_int sols /. float_of_int count))
    (List.sort Stdlib.compare
       (Hashtbl.fold (fun k v acc -> (k, v) :: acc) histogram []));
  if !timeouts > 0 then Format.printf "(%d timeouts)@." !timeouts
