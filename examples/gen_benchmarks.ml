(* Regenerates the committed netlists under examples/benchmarks/.

   Each benchmark is deliberately naive two-level logic — every small
   block is a minterm-expanded sum of products — so exact cut
   rewriting has real redundancy to remove while the reference
   function stays obvious. *)

module Ntk = Stp_network.Ntk

(* OR of the minterms of [f] over [lits], as a linear AND/OR chain.
   Structural hashing shares identical product subterms, which is
   fine: the result is still far from the optimum circuit. *)
let minterm_or ntk lits f =
  let n = Array.length lits in
  let acc = ref Ntk.const_false in
  for m = 0 to (1 lsl n) - 1 do
    if f (fun i -> m land (1 lsl i) <> 0) then begin
      let product = ref Ntk.const_true in
      for i = 0 to n - 1 do
        let l = if m land (1 lsl i) <> 0 then lits.(i) else Ntk.lit_not lits.(i) in
        product := Ntk.add_and ntk !product l
      done;
      acc := Ntk.add_or ntk !acc !product
    end
  done;
  !acc

let full_adder ntk a b cin =
  let lits = [| a; b; cin |] in
  let bit v i = if v i then 1 else 0 in
  let sum = minterm_or ntk lits (fun v -> (bit v 0 + bit v 1 + bit v 2) land 1 = 1) in
  let cout = minterm_or ntk lits (fun v -> bit v 0 + bit v 1 + bit v 2 >= 2) in
  (sum, cout)

let mux2 ntk s a b =
  minterm_or ntk [| s; a; b |] (fun v -> if v 0 then v 1 else v 2)

let xor3 ntk a b c =
  minterm_or ntk [| a; b; c |] (fun v ->
      let bit i = if v i then 1 else 0 in
      (bit 0 + bit 1 + bit 2) land 1 = 1)

(* 4-bit ripple-carry adder with carry-in: 9 PIs, 5 POs. *)
let adder () =
  let ntk = Ntk.create () in
  let a = Array.init 4 (fun _ -> Ntk.add_pi ntk) in
  let b = Array.init 4 (fun _ -> Ntk.add_pi ntk) in
  let carry = ref (Ntk.add_pi ntk) in
  for i = 0 to 3 do
    let sum, cout = full_adder ntk a.(i) b.(i) !carry in
    ignore (Ntk.add_po ntk sum);
    carry := cout
  done;
  ignore (Ntk.add_po ntk !carry);
  ntk

(* 8-input odd parity as a cascade of minterm-expanded XOR3 blocks. *)
let parity8 () =
  let ntk = Ntk.create () in
  let x = Array.init 8 (fun _ -> Ntk.add_pi ntk) in
  let p1 = xor3 ntk x.(0) x.(1) x.(2) in
  let p2 = xor3 ntk p1 x.(3) x.(4) in
  let p3 = xor3 ntk p2 x.(5) x.(6) in
  let out =
    minterm_or ntk [| p3; x.(7) |] (fun v -> v 0 <> v 1)
  in
  ignore (Ntk.add_po ntk out);
  ntk

(* 4:1 mux from three minterm-expanded 2:1 muxes: s1 s0 a b c d -> out. *)
let mux41 () =
  let ntk = Ntk.create () in
  let s1 = Ntk.add_pi ntk in
  let s0 = Ntk.add_pi ntk in
  let a = Ntk.add_pi ntk in
  let b = Ntk.add_pi ntk in
  let c = Ntk.add_pi ntk in
  let d = Ntk.add_pi ntk in
  let t0 = mux2 ntk s0 a b in
  let t1 = mux2 ntk s0 c d in
  ignore (Ntk.add_po ntk (mux2 ntk s1 t0 t1));
  ntk

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "examples/benchmarks" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let save name ntk =
    let path = Filename.concat dir name in
    if Filename.check_suffix name ".blif" then
      Stp_network.Blif.write_file path ntk
    else Stp_network.Aiger.write_file path ntk;
    Printf.printf "%-14s %d PIs, %d POs, %d ANDs, depth %d\n" name
      (Ntk.num_pis ntk) (Ntk.num_pos ntk) (Ntk.count_live ntk) (Ntk.depth ntk)
  in
  save "adder.aig" (adder ());
  save "parity8.aig" (parity8 ());
  save "mux41.aig" (mux41 ());
  save "mux41.blif" (mux41 ())
