(* The liar puzzle of Example 4, solved on STP canonical forms, with the
   Fig. 1 search tree.

   Three persons a, b, c are each either honest or a liar. a says "b is
   a liar"; b says "c is a liar"; c says "both a and b are liars". Who is
   honest?

   Run with:  dune exec examples/liar_puzzle.exe *)

open Stp_matrix

let () =
  let phi =
    let open Expr in
    let a = var 0 and b = var 1 and c = var 2 in
    ((a <=> not_ b) && (b <=> not_ c)) && (c <=> (not_ a && not_ b))
  in
  Format.printf "formula: %a@.@." Expr.pp phi;

  (* The canonical form is computed by genuine STP rewriting: structural
     matrices, Property 1 pushes, M_r power-reductions, M_w swaps. *)
  let m = Canonical.of_expr ~n:3 phi in
  Format.printf "canonical form M_phi =@.%a@.@." Matrix.pp m;

  (* SAT = extract the [1;0] columns (Fig. 1). *)
  Format.printf "search tree:@.%a@.@." Stp_sat.pp_tree (Stp_sat.trace m);
  (match Stp_sat.all_solutions m with
   | [] -> Format.printf "unsatisfiable?!@."
   | sols ->
     List.iter
       (fun s ->
         Format.printf "solution: a=%s b=%s c=%s@."
           (if s.(0) then "honest" else "liar")
           (if s.(1) then "honest" else "liar")
           (if s.(2) then "honest" else "liar"))
       sols);
  Format.printf "@.(the paper's unique answer: only b is honest)@."
