(* Multi-output synthesis: a full adder with a shared gate pool — the
   complete Boolean-chain model of the paper's Section II-B.

   Run with:  dune exec examples/full_adder.exe *)

module Tt = Stp_tt.Tt
module Mchain = Stp_chain.Mchain
module Multi = Stp_synth.Multi
module Spec = Stp_synth.Spec

let () =
  let sum = Tt.of_hex ~n:3 "96" and carry = Tt.of_hex ~n:3 "e8" in
  Format.printf "sum = %a, carry = %a@.@." Tt.pp sum Tt.pp carry;

  let options = Spec.with_timeout 60.0 in

  (* Exact joint synthesis: the classic 5-gate full adder emerges. *)
  (match Multi.exact ~options [| sum; carry |] with
   | { Multi.status = Spec.Solved; mchain = Some mc; gates = Some g; _ } ->
     Format.printf "joint optimum: %d gates@.%a@." g Mchain.pp mc
   | _ -> Format.printf "timeout@.");

  (* Separate synthesis wastes a gate. *)
  let g f =
    match Stp_synth.Stp_exact.synthesize ~options f with
    | { Spec.status = Spec.Solved; gates = Some g; _ } -> g
    | _ -> -1
  in
  Format.printf "@.separate optima: sum %d + carry %d = %d gates@."
    (g sum) (g carry) (g sum + g carry);

  (* The heuristic sharing pass reaches the optimum here too. *)
  match Multi.stp_shared ~options [| sum; carry |] with
  | { Multi.status = Spec.Solved; mchain = Some mc; gates = Some gts; _ } ->
    Format.printf "@.stp_shared: %d gates (%d shared steps)@." gts
      (Mchain.share_count mc)
  | _ -> Format.printf "timeout@."
