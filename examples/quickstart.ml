(* Quickstart: synthesise the paper's running example 0x8ff8 (Examples 7
   and 8) and print every optimum Boolean chain.

   Run with:  dune exec examples/quickstart.exe *)

module Tt = Stp_tt.Tt

let () =
  (* The paper's target: f = 0x8ff8 over four inputs (a, b, c, d). *)
  let f = Tt.of_hex ~n:4 "8ff8" in
  Format.printf "target: %a  (binary %s)@.@." Tt.pp f (Tt.to_bin f);

  (* One call returns ALL optimum chains, not just one. *)
  let result = Stp_synth.Stp_exact.synthesize f in
  (match result.Stp_synth.Spec.status with
   | Stp_synth.Spec.Timeout -> Format.printf "unexpected timeout@."
   | Stp_synth.Spec.Solved ->
     let gates = Option.get result.Stp_synth.Spec.gates in
     let chains = result.Stp_synth.Spec.chains in
     Format.printf "optimum size: %d gates; %d optimal chains:@.@." gates
       (List.length chains);
     List.iteri
       (fun i c ->
         Format.printf "solution %d:  %a@." (i + 1) Stp_chain.Chain.pp_compact c;
         (* every solution really computes f *)
         assert (Tt.equal (Stp_chain.Chain.simulate c) f))
       chains);

  (* The all-solutions set contains the two chains of the paper's
     Example 7: x7 = OR(x5, x6) over AND/XOR, and the NAND/XNOR variant. *)
  Format.printf
    "@.(compare with Example 7: x5=6(c,d); x6=8(a,b); x7=e(x5,x6) and its \
     complement-gate variant)@."
