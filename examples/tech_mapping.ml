(* Technology-flavoured synthesis: restricted gate libraries, depth
   bounds, and exporting the winners — the downstream workflow the
   paper's all-solutions output enables.

   Run with:  dune exec examples/tech_mapping.exe *)

module Tt = Stp_tt.Tt
module Chain = Stp_chain.Chain
module Spec = Stp_synth.Spec

let and_class = [ 1; 2; 4; 7; 8; 11; 13; 14 ]

let show name (r : Spec.result) =
  match r.Spec.status with
  | Spec.Solved ->
    let c = List.hd r.Spec.chains in
    Format.printf "%-28s %d gates, depth %d:  %a@." name
      (Option.get r.Spec.gates) (Chain.depth c) Chain.pp_compact c
  | Spec.Timeout -> Format.printf "%-28s (no realisation)@." name

let () =
  (* A full-adder sum bit: XOR-heavy, interesting across libraries. *)
  let f = Tt.of_hex ~n:3 "96" in
  Format.printf "target: 3-input parity %a@.@." Tt.pp f;

  let base = Spec.with_timeout 30.0 in
  show "free library" (Stp_synth.Stp_exact.synthesize ~options:base f);
  show "AND class only (AIG)"
    (Stp_synth.Stp_exact.synthesize
       ~options:{ base with Spec.basis = Some and_class }
       f);
  show "XOR/XNOR only"
    (Stp_synth.Stp_exact.synthesize
       ~options:{ base with Spec.basis = Some [ 6; 9 ] }
       f);

  (* Depth-bounded: a 6-input AND tree, balanced vs unconstrained. *)
  Format.printf "@.target: AND6@.@.";
  let and6 = Tt.of_fun 6 (fun m -> m = 63) in
  show "AND6, depth unbounded"
    (Stp_synth.Stp_exact.synthesize ~options:base and6);
  show "AND6, depth <= 3"
    (Stp_synth.Stp_exact.synthesize
       ~options:{ base with Spec.max_depth = Some 3 }
       and6);

  (* Export the balanced AND6 to Verilog/BLIF. *)
  (match
     Stp_synth.Stp_exact.synthesize
       ~options:{ base with Spec.max_depth = Some 3 }
       and6
   with
   | { Spec.status = Spec.Solved; chains = c :: _; _ } ->
     Format.printf "@.--- Verilog ---@.%s" (Stp_chain.Export.to_verilog c);
     Format.printf "@.--- BLIF ---@.%s" (Stp_chain.Export.to_blif c)
   | _ -> ())
